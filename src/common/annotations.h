// Thread-safety annotations + ranked mutex wrappers — the two enforcement
// layers for the locking discipline that protects the paper's invariants
// (TF = min_c TF(c), TP = min_s TP(s), the hook-gated region online rule).
//
// Layer 1 (compile time): Clang thread-safety-analysis macros. Under clang
// with -Wthread-safety (cmake -DTFR_ANALYZE=ON) every TFR_GUARDED_BY /
// TFR_REQUIRES violation is a build error; under gcc they expand to nothing.
//
// Layer 2 (runtime): a lock-rank validator (cmake -DTFR_LOCK_RANK=ON, the
// default). Every tfr::Mutex carries a LockRank; a thread may only acquire a
// mutex whose rank is *strictly lower* than the lowest rank it already holds
// (locks are ranked outermost-highest, so acquisition order is strictly
// descending). Re-entrant or out-of-order acquisition aborts the process,
// printing the held-lock stack with acquire sites plus a backtrace of the
// offending acquisition — turning a once-in-a-soak deadlock into a
// deterministic one-line repro. See DESIGN.md "Lock ranks" for the table.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define TFR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TFR_THREAD_ANNOTATION(x)
#endif

#define TFR_CAPABILITY(x) TFR_THREAD_ANNOTATION(capability(x))
#define TFR_SCOPED_CAPABILITY TFR_THREAD_ANNOTATION(scoped_lockable)
#define TFR_GUARDED_BY(x) TFR_THREAD_ANNOTATION(guarded_by(x))
#define TFR_PT_GUARDED_BY(x) TFR_THREAD_ANNOTATION(pt_guarded_by(x))
#define TFR_ACQUIRED_BEFORE(...) TFR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TFR_ACQUIRED_AFTER(...) TFR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define TFR_REQUIRES(...) TFR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TFR_REQUIRES_SHARED(...) TFR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define TFR_ACQUIRE(...) TFR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TFR_ACQUIRE_SHARED(...) TFR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define TFR_RELEASE(...) TFR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TFR_RELEASE_SHARED(...) TFR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TFR_RELEASE_GENERIC(...) TFR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TFR_TRY_ACQUIRE(...) TFR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TFR_EXCLUDES(...) TFR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TFR_ASSERT_CAPABILITY(x) TFR_THREAD_ANNOTATION(assert_capability(x))
#define TFR_RETURN_CAPABILITY(x) TFR_THREAD_ANNOTATION(lock_returned(x))
#define TFR_NO_THREAD_SAFETY_ANALYSIS TFR_THREAD_ANNOTATION(no_thread_safety_analysis)

// The runtime validator is compiled in when TFR_LOCK_RANK is defined non-zero
// (the cmake option of the same name, ON by default; benches can build with
// -DTFR_LOCK_RANK=OFF to shave the per-acquire bookkeeping).
#ifndef TFR_LOCK_RANK
#define TFR_LOCK_RANK 0
#endif

namespace tfr {

// ---------------------------------------------------------------------------
// Lock ranks. Acquisition order is strictly DESCENDING: holding rank R, a
// thread may only acquire ranks < R. Outermost locks (the testbed harness,
// the recovery manager) have the highest ranks; utility leaves (metrics, the
// log emit lock) the lowest. The values encode the edges actually taken at
// runtime — e.g. PersistTracker deliberately holds its mutex across
// Wal::sync (Algorithm 3's atomic probe-and-publish), so kRecoveryTracker >
// kWalSync > kWal > kDfs. The full rationale lives in DESIGN.md.
// ---------------------------------------------------------------------------
enum class LockRank : int {
  kLogging = 10,           // logging.cpp emit lock: innermost, logs happen under locks
  kMetrics = 20,           // metrics.cpp counter registry
  kLatencyModel = 30,      // latency.h jitter rng (taken under region/WAL locks)
  kThreadingInternal = 40, // PeriodicTask / Semaphore / CountdownLatch internals
  kQueue = 50,             // BlockingQueue / SyncedMinQueue (taken inside TM commit)
  kEpochRegistry = 55,     // epoch.h region->epoch map (probed under WAL/region locks)
  kFaultInjector = 60,     // fault.h rule table (probed under region locks via DFS)
  kBlockCache = 70,        // block_cache.h LRU state
  kServerHooks = 80,       // region_server.h hook/observer registration
  kDfs = 90,               // dfs.h namespace + datanode map
  kCoord = 100,            // coord.h sessions/kv (RM publishes TF/TP under its own lock)
  kTxnLog = 110,           // txn_log.h records + group-commit lanes
  kTxnManager = 120,       // txn_manager.h oracle/conflict table
  kWal = 130,              // wal.h segment map
  kWalSync = 140,          // wal.h sync serialization (outer of kWal)
  kMaster = 150,           // master.h assignment map
  kRegion = 160,           // region.h memstore + store-file list
  kRegionServer = 170,     // region_server.h region map (outer of kRegion)
  kClientLifecycle = 180,  // txn_client thread lifecycle (terminator/flushers)
  kRecoveryTracker = 190,  // flush/persist tracker, recovery-client stats
  kThresholdRegistry = 195,  // threshold_registry.h stripes (taken under the RM mutex)
  kRecoveryManager = 200,  // recovery_manager.h TF/TP aggregation state
  kHarness = 210,          // testbed.h RM swap lock (outermost: held across replays)
  kLeaf = 40,              // default for ad-hoc mutexes: nest under anything
};

namespace lockrank {
#if TFR_LOCK_RANK
// Called with the mutex address *before* blocking on it, so an
// order-violating acquisition aborts before it can deadlock.
void on_acquire(const void* mu, int rank, const char* name, bool shared, const char* file,
                int line);
void on_release(const void* mu);
#endif
}  // namespace lockrank

// ---------------------------------------------------------------------------
// Annotated, ranked wrappers. These are the only lock primitives the tree
// uses (scripts/lint.sh rejects raw std::mutex outside this header).
// ---------------------------------------------------------------------------

class TFR_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf, const char* name = "mutex") noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(const char* file = __builtin_FILE(), int line = __builtin_LINE()) TFR_ACQUIRE() {
    lock_impl(file, line);
  }
  void unlock() TFR_RELEASE() { unlock_impl(); }

 private:
  friend class MutexLock;
  friend class CondVar;

  void lock_impl(const char* file, int line) {
#if TFR_LOCK_RANK
    lockrank::on_acquire(this, rank_, name_, /*shared=*/false, file, line);
#else
    (void)file;
    (void)line;
#endif
    impl_.lock();
  }
  void unlock_impl() {
#if TFR_LOCK_RANK
    lockrank::on_release(this);
#endif
    impl_.unlock();
  }

  std::mutex impl_;
  const int rank_;
  const char* const name_;
};

class TFR_CAPABILITY("mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf, const char* name = "shared_mutex") noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock(const char* file = __builtin_FILE(), int line = __builtin_LINE()) TFR_ACQUIRE() {
#if TFR_LOCK_RANK
    lockrank::on_acquire(this, rank_, name_, /*shared=*/false, file, line);
#else
    (void)file;
    (void)line;
#endif
    impl_.lock();
  }
  void unlock() TFR_RELEASE() {
#if TFR_LOCK_RANK
    lockrank::on_release(this);
#endif
    impl_.unlock();
  }
  void lock_shared(const char* file = __builtin_FILE(),
                   int line = __builtin_LINE()) TFR_ACQUIRE_SHARED() {
#if TFR_LOCK_RANK
    lockrank::on_acquire(this, rank_, name_, /*shared=*/true, file, line);
#else
    (void)file;
    (void)line;
#endif
    impl_.lock_shared();
  }
  void unlock_shared() TFR_RELEASE_SHARED() {
#if TFR_LOCK_RANK
    lockrank::on_release(this);
#endif
    impl_.unlock_shared();
  }

 private:
  std::shared_mutex impl_;
  const int rank_;
  const char* const name_;
};

/// std::unique_lock stand-in for tfr::Mutex: RAII acquire with manual
/// unlock()/lock() (used around callbacks that must run unlocked) and the
/// lock handle tfr::CondVar waits on.
class TFR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) TFR_ACQUIRE(mu)
      : mu_(&mu), file_(file), line_(line) {
    mu_->lock_impl(file_, line_);
    held_ = true;
  }
  ~MutexLock() TFR_RELEASE() {
    if (held_) mu_->unlock_impl();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() TFR_RELEASE() {
    mu_->unlock_impl();
    held_ = false;
  }
  void lock() TFR_ACQUIRE() {
    mu_->lock_impl(file_, line_);
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_ = false;
  const char* file_;
  int line_;
};

/// RAII exclusive lock on a SharedMutex.
class TFR_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) TFR_ACQUIRE(mu)
      : mu_(&mu) {
    mu_->lock(file, line);
  }
  ~WriterLock() TFR_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock on a SharedMutex.
class TFR_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) TFR_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared(file, line);
  }
  ~ReaderLock() TFR_RELEASE() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to tfr::Mutex via MutexLock. Waits release and
/// re-acquire through the validator, so rank bookkeeping stays exact across
/// blocking. Thread-safety analysis treats a wait as lockset-neutral (the
/// lock is held again when it returns), which matches the explicit
/// `while (!cond) cv.wait(lock);` pattern used throughout the tree —
/// predicate lambdas would be analyzed as unlocked separate functions, so
/// the wrappers intentionally do not take predicates.
class CondVar {
 public:
  void wait(MutexLock& lock) {
    Relocker r{&lock};
    cv_.wait(r);
  }

  /// Returns false if `deadline` passed without a notification.
  bool wait_until(MutexLock& lock, std::chrono::steady_clock::time_point deadline) {
    Relocker r{&lock};
    return cv_.wait_until(r, deadline) == std::cv_status::no_timeout;
  }

  /// Returns false on timeout.
  bool wait_for(MutexLock& lock, std::int64_t timeout_micros) {
    return wait_until(lock,
                      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_micros));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // BasicLockable adapter handed to condition_variable_any: forwards to the
  // un-annotated impl paths so the cv's internal unlock/relock neither trips
  // the static analysis nor escapes the runtime validator.
  struct Relocker {
    MutexLock* l;
    void lock() TFR_NO_THREAD_SAFETY_ANALYSIS {
      l->mu_->lock_impl(l->file_, l->line_);
      l->held_ = true;
    }
    void unlock() TFR_NO_THREAD_SAFETY_ANALYSIS {
      l->mu_->unlock_impl();
      l->held_ = false;
    }
  };
  std::condition_variable_any cv_;
};

}  // namespace tfr
