#include "src/common/status.h"

namespace tfr {

std::string_view code_name(Code c) {
  switch (c) {
    case Code::kOk: return "Ok";
    case Code::kNotFound: return "NotFound";
    case Code::kAlreadyExists: return "AlreadyExists";
    case Code::kInvalidArgument: return "InvalidArgument";
    case Code::kUnavailable: return "Unavailable";
    case Code::kAborted: return "Aborted";
    case Code::kTimeout: return "Timeout";
    case Code::kClosed: return "Closed";
    case Code::kCorruption: return "Corruption";
    case Code::kInternal: return "Internal";
    case Code::kWrongEpoch: return "WrongEpoch";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "Ok";
  std::string out(code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tfr
