#include "src/common/crc32.h"

#include <array>

namespace tfr {

namespace {
constexpr std::uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}
}  // namespace

std::uint32_t crc32c(std::string_view data) {
  std::uint32_t crc = 0xffffffff;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ table()[(crc ^ c) & 0xff];
  }
  return crc ^ 0xffffffff;
}

}  // namespace tfr
