// Injectable latency models. Every simulated "remote" interaction (RPC hop,
// DFS sync, DFS block read) charges its cost through a LatencyModel so tests
// can run at zero latency while benches reproduce the paper's testbed shape.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/random.h"

namespace tfr {

/// A latency with a fixed base plus exponential jitter. Thread-safe.
class LatencyModel {
 public:
  LatencyModel() = default;
  LatencyModel(Micros base, Micros jitter_mean) : base_(base), jitter_mean_(jitter_mean) {}

  /// Draw one latency sample (does not sleep).
  Micros sample() {
    const Micros base = base_.load(std::memory_order_relaxed);
    const Micros jitter = jitter_mean_.load(std::memory_order_relaxed);
    if (jitter <= 0) return base;
    MutexLock lock(mutex_);
    return base + static_cast<Micros>(rng_.next_exponential(static_cast<double>(jitter)));
  }

  /// Sleep for one sample (no-op when the model is zero).
  void charge() {
    const Micros us = sample();
    if (us > 0) sleep_micros(us);
  }

  void set(Micros base, Micros jitter_mean) {
    base_.store(base, std::memory_order_relaxed);
    jitter_mean_.store(jitter_mean, std::memory_order_relaxed);
  }

  bool is_zero() const {
    return base_.load(std::memory_order_relaxed) == 0 &&
           jitter_mean_.load(std::memory_order_relaxed) == 0;
  }

 private:
  std::atomic<Micros> base_{0};
  std::atomic<Micros> jitter_mean_{0};
  RankedMutex<LockRank::kLatencyModel> mutex_{"latency_rng"};
  Rng rng_ TFR_GUARDED_BY(mutex_){0xfeedfaceULL};
};

}  // namespace tfr
