#include "src/common/fault.h"

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

std::string_view fault_op_name(FaultOp op) {
  switch (op) {
    case FaultOp::kRpcApply: return "rpc_apply";
    case FaultOp::kRpcGet: return "rpc_get";
    case FaultOp::kRpcScan: return "rpc_scan";
    case FaultOp::kDfsSync: return "dfs_sync";
    case FaultOp::kDfsRead: return "dfs_read";
    case FaultOp::kCoordHeartbeat: return "coord_heartbeat";
  }
  return "unknown";
}

namespace {
bool target_matches(const std::string& rule_target, std::string_view target) {
  return rule_target.empty() ||
         target.compare(0, rule_target.size(), rule_target) == 0;
}
}  // namespace

void FaultInjector::reseed(std::uint64_t seed) {
  MutexLock lock(mutex_);
  seed_ = seed;
  rng_ = Rng(seed);
}

std::uint64_t FaultInjector::seed() const {
  MutexLock lock(mutex_);
  return seed_;
}

int FaultInjector::add_rule(FaultRule rule) {
  int id;
  {
    MutexLock lock(mutex_);
    rules_.push_back(std::move(rule));
    id = static_cast<int>(rules_.size());
  }
  set_enabled(true);
  return id;
}

void FaultInjector::clear_rules() {
  MutexLock lock(mutex_);
  rules_.clear();
  // Partitions survive clear_rules(); only disable the fast path when
  // nothing at all is installed.
  if (partitions_.empty()) enabled_.store(false, std::memory_order_release);
}

namespace {
Counter& partitions_active_gauge() {
  static Counter& g = global_counter("fault.partitions_active");
  return g;
}
}  // namespace

int FaultInjector::add_partition(PartitionRule rule) {
  int id;
  {
    MutexLock lock(mutex_);
    id = next_partition_id_++;
    partitions_.emplace_back(id, std::move(rule));
  }
  partitions_active_gauge().add(1);
  set_enabled(true);
  return id;
}

void FaultInjector::heal_partition(int id) {
  bool healed = false;
  {
    MutexLock lock(mutex_);
    for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
      if (it->first == id) {
        partitions_.erase(it);
        healed = true;
        break;
      }
    }
    if (partitions_.empty() && rules_.empty()) {
      enabled_.store(false, std::memory_order_release);
    }
  }
  if (healed) partitions_active_gauge().add(-1);
}

void FaultInjector::clear_partitions() {
  std::size_t healed;
  {
    MutexLock lock(mutex_);
    healed = partitions_.size();
    partitions_.clear();
    if (rules_.empty()) enabled_.store(false, std::memory_order_release);
  }
  if (healed > 0) partitions_active_gauge().add(-static_cast<std::int64_t>(healed));
}

bool FaultInjector::partitioned(std::string_view from, std::string_view to) {
  if (!enabled()) return false;
  bool blocked = false;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, rule] : partitions_) {
      (void)id;
      const bool forward = target_matches(rule.src, from) && target_matches(rule.dst, to);
      const bool reverse =
          rule.symmetric && target_matches(rule.src, to) && target_matches(rule.dst, from);
      if (forward || reverse) {
        blocked = true;
        break;
      }
    }
    if (blocked) ++stats_.partition_drops;
  }
  if (blocked) {
    static Counter& drops = global_counter("fault.partition_drops");
    drops.add();
  }
  return blocked;
}

Status FaultInjector::check_partition(FaultOp op, std::string_view from, std::string_view to) {
  if (!partitioned(from, to)) return Status::ok();
  return Status::unavailable("partition dropped " + std::string(fault_op_name(op)) + " from " +
                             std::string(from) + " to " + std::string(to));
}

FaultAction FaultInjector::inject(FaultOp op, std::string_view target) {
  FaultAction action;
  if (!enabled()) return action;
  {
    MutexLock lock(mutex_);
    for (auto& rule : rules_) {
      if (rule.op != op || !target_matches(rule.target, target)) continue;
      ++stats_.evaluations;
      if (rule.fail_next > 0) {
        --rule.fail_next;
        action.fail = true;
      }
      if (!action.fail && rule.error_probability > 0 &&
          rng_.next_bool(rule.error_probability)) {
        action.fail = true;
      }
      if (op == FaultOp::kRpcApply) {
        if (rule.drop_response_probability > 0 &&
            rng_.next_bool(rule.drop_response_probability)) {
          action.drop_response = true;
        }
        if (rule.corrupt_probability > 0 && rng_.next_bool(rule.corrupt_probability)) {
          action.corrupt_wire = true;
        }
      }
      if (rule.delay > 0 && rule.delay_probability > 0 &&
          rng_.next_bool(rule.delay_probability)) {
        action.delayed += rule.delay;
      }
    }
    if (action.fail) ++stats_.injected_errors;
    if (action.drop_response) ++stats_.dropped_responses;
    if (action.corrupt_wire) ++stats_.corrupted_wires;
    if (action.delayed > 0) {
      ++stats_.injected_delays;
      stats_.delay_micros += action.delayed;
    }
  }
  // Mirror into the process-wide counters (static refs: one registry lookup
  // per process, then a relaxed atomic add).
  static Counter& errors = global_counter("fault.injected_errors");
  static Counter& drops = global_counter("fault.dropped_responses");
  static Counter& corruptions = global_counter("fault.corrupted_wires");
  static Counter& delays = global_counter("fault.injected_delays");
  if (action.fail) errors.add();
  if (action.drop_response) drops.add();
  if (action.corrupt_wire) corruptions.add();
  if (action.delayed > 0) {
    delays.add();
    sleep_micros(action.delayed);  // the injected latency, outside the lock
  }
  return action;
}

Status FaultInjector::check(FaultOp op, std::string_view target) {
  const FaultAction action = inject(op, target);
  if (action.fail || action.drop_response) {
    return Status::unavailable("injected " + std::string(fault_op_name(op)) + " fault on " +
                               std::string(target));
  }
  return Status::ok();
}

FaultStats FaultInjector::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void FaultInjector::reset_stats() {
  MutexLock lock(mutex_);
  stats_ = FaultStats{};
}

}  // namespace tfr
