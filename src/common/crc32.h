// CRC-32C (Castagnoli) for storage integrity: WAL record frames and
// store-file blocks carry a checksum that is verified on read, so a torn or
// bit-flipped region of the DFS surfaces as Corruption instead of silently
// wrong data.
#pragma once

#include <cstdint>
#include <string_view>

namespace tfr {

/// CRC-32C of `data` (software table implementation; speed is irrelevant
/// next to the simulated I/O latencies).
std::uint32_t crc32c(std::string_view data);

}  // namespace tfr
