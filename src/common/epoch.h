// EpochRegistry — the shared-storage side of the fencing protocol.
//
// Every region has a monotonically increasing *ownership epoch*. The master
// advances it (through the coordination service) before reassigning the
// region or replaying its recovery log; a region server stamps the epoch it
// was granted on every WAL append and store-file finalization. The storage
// layer consults this registry at those boundaries and rejects any write
// bearing an epoch older than the current one with Status::wrong_epoch —
// the classic fencing-token check that turns "the master *believes* the old
// owner is dead" into "the old owner *cannot* mutate shared state".
//
// The registry is process-local (our DFS/WAL are in-process); in a real
// deployment this state would ride with the storage nodes themselves, which
// is why it lives in common/ rather than inside the master: the master
// *advances* epochs, but storage *enforces* them.
//
// Epoch 0 means "never fenced": current() returns 0 for unknown regions, so
// components that run without the registry (unit tests, benches) are never
// rejected.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/common/annotations.h"
#include "src/common/status.h"

namespace tfr {

/// Thread-safe region -> ownership-epoch map. One instance per Cluster,
/// shared by the master (writer) and the WAL / region store-file
/// finalization paths (readers).
class EpochRegistry {
 public:
  /// The current epoch for `region`; 0 if the region was never fenced.
  std::uint64_t current(const std::string& region) const;

  /// Monotonically advance `region`'s epoch to `epoch`. Returns the epoch
  /// actually in force afterwards (>= `epoch` — a concurrent advance may
  /// have gone further; epochs never move backwards).
  std::uint64_t advance_to(const std::string& region, std::uint64_t epoch);

  /// Ok iff `epoch` is current (>= the registered epoch) for `region`.
  /// The canonical fencing check; callers count kv.epoch_rejects themselves
  /// so the counter names the boundary that rejected.
  Status validate(const std::string& region, std::uint64_t epoch) const;

 private:
  mutable RankedMutex<LockRank::kEpochRegistry> mutex_{"epoch_registry"};
  std::map<std::string, std::uint64_t> epochs_ TFR_GUARDED_BY(mutex_);
};

}  // namespace tfr
