#include "src/txn/txn_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace tfr {

TxnManager::TxnManager(TxnLogConfig log_config) : log_(log_config) {}

namespace {
void remove_active(std::set<Timestamp>& set, std::unordered_map<Timestamp, int>& count,
                   Timestamp ts) {
  auto it = count.find(ts);
  if (it == count.end()) return;
  if (--it->second == 0) {
    count.erase(it);
    set.erase(ts);
  }
}
}  // namespace

TxnHandle TxnManager::begin(Timestamp start_ts, const std::string& client_id) {
  TxnHandle h;
  h.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  h.start_ts = start_ts;
  h.client_id = client_id;
  MutexLock lock(mutex_);
  if (++active_count_[start_ts] == 1) active_start_ts_.insert(start_ts);
  if (!client_id.empty()) open_by_client_[client_id][h.txn_id] = start_ts;
  return h;
}

void TxnManager::abandon_client(const std::string& client_id) {
  MutexLock lock(mutex_);
  auto it = open_by_client_.find(client_id);
  if (it == open_by_client_.end()) return;
  for (const auto& [txn_id, start_ts] : it->second) {
    remove_active(active_start_ts_, active_count_, start_ts);
    ++stats_.aborts_explicit;
  }
  open_by_client_.erase(it);
}

Result<Timestamp> TxnManager::commit(const TxnHandle& txn, WriteSet ws,
                                     const TsListener& ts_listener) {
  Timestamp commit_ts = kNoTimestamp;
  {
    MutexLock lock(mutex_);
    // First-committer-wins write-write conflict check (snapshot isolation):
    // abort if any row we wrote was committed by someone after our snapshot.
    // Conflict keys are table-qualified — the same row key in two tables is
    // not a conflict.
    for (const auto& m : ws.mutations) {
      auto it = last_writer_.find(ws.table + "\x1f" + m.row);
      if (it != last_writer_.end() && it->second > txn.start_ts) {
        remove_active(active_start_ts_, active_count_, txn.start_ts);
        if (!txn.client_id.empty()) {
          auto cit = open_by_client_.find(txn.client_id);
          if (cit != open_by_client_.end()) cit->second.erase(txn.txn_id);
        }
        ++stats_.aborts_conflict;
        return Status::aborted("write-write conflict on row " + m.row);
      }
    }
    commit_ts = ++last_ts_;
    for (const auto& m : ws.mutations) last_writer_[ws.table + "\x1f" + m.row] = commit_ts;
    remove_active(active_start_ts_, active_count_, txn.start_ts);
    if (!txn.client_id.empty()) {
      auto cit = open_by_client_.find(txn.client_id);
      if (cit != open_by_client_.end()) cit->second.erase(txn.txn_id);
    }
    ++stats_.commits;
    if (++commits_since_prune_ >= 4096) prune_conflicts_locked();
    // Inside the critical section: Algorithm 1's FQ sees commit timestamps
    // with no gaps relative to current_ts().
    if (ts_listener) ts_listener(commit_ts);
  }
  ws.commit_ts = commit_ts;
  // Group-commit append; returning from here IS the commit point (§2.2).
  TFR_RETURN_IF_ERROR(log_.append(std::move(ws)));
  return commit_ts;
}

void TxnManager::abort(const TxnHandle& txn) {
  MutexLock lock(mutex_);
  remove_active(active_start_ts_, active_count_, txn.start_ts);
  if (!txn.client_id.empty()) {
    auto cit = open_by_client_.find(txn.client_id);
    if (cit != open_by_client_.end()) cit->second.erase(txn.txn_id);
  }
  ++stats_.aborts_explicit;
}

Timestamp TxnManager::current_ts() const {
  MutexLock lock(mutex_);
  return last_ts_;
}

void TxnManager::checkpoint(Timestamp tp) {
  log_.truncate_through(tp);
  MutexLock lock(mutex_);
  prune_floor_ = std::max(prune_floor_, tp);
}

void TxnManager::prune_conflicts_locked() {
  commits_since_prune_ = 0;
  // A conflict entry is needed while some current or future snapshot could
  // be older than it. Future snapshots are >= prune_floor_ (the stable
  // snapshot never regresses below the published TF >= TP); current ones
  // are bounded by the oldest active transaction.
  Timestamp floor = prune_floor_;
  if (!active_start_ts_.empty()) floor = std::min(floor, *active_start_ts_.begin());
  if (floor <= kNoTimestamp) return;
  for (auto it = last_writer_.begin(); it != last_writer_.end();) {
    if (it->second <= floor) {
      it = last_writer_.erase(it);
    } else {
      ++it;
    }
  }
}

TxnManagerStats TxnManager::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace tfr
