#include "src/txn/txn_log.h"

#include <functional>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

TxnLog::TxnLog(TxnLogConfig config) : config_(config) {
  const int lanes = std::max(1, config.lanes);
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->sync_model.set(config.sync_latency, config.sync_jitter);
    lanes_.push_back(std::move(lane));
  }
  for (auto& lane : lanes_) {
    lane->appender = std::thread([this, lane = lane.get()] { appender_loop(*lane); });
  }
}

TxnLog::~TxnLog() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  for (auto& lane : lanes_) lane->work_cv.notify_all();
  for (auto& lane : lanes_) {
    if (lane->appender.joinable()) lane->appender.join();
  }
}

Status TxnLog::append(WriteSet ws) {
  if (ws.commit_ts == kNoTimestamp) {
    return Status::invalid_argument("write-set has no commit timestamp");
  }
  // Route by client: a client's commits serialize through one logging node,
  // different clients' batches overlap across lanes.
  Lane& lane = *lanes_[std::hash<std::string>{}(ws.client_id) % lanes_.size()];
  auto pending = std::make_shared<Pending>();
  pending->ws = std::move(ws);
  {
    MutexLock lock(mutex_);
    lane.queue.push_back(pending);
    lane.work_cv.notify_one();
    while (!pending->done && !stop_) done_cv_.wait(lock);
    if (!pending->done) return Status::closed("txn log shut down");
  }
  return Status::ok();
}

void TxnLog::appender_loop(Lane& lane) {
  static Histogram& batch_hist = global_histogram("log.batch_size");
  static Histogram& sync_hist = global_histogram("log.sync_wait");
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    bool waited = false;
    {
      MutexLock lock(mutex_);
      while (lane.queue.empty() && !stop_) lane.work_cv.wait(lock);
      if (stop_) return;
      if (config_.adaptive && lane.queue.size() < config_.max_batch &&
          static_cast<double>(lane.queue.size()) < lane.ewma_batch) {
        // The queue at wake is shallower than the recent batch size: more
        // appenders are likely mid-flight, so hold the sync briefly to let
        // them join. The window is worth at most half a sync — beyond that
        // the wait costs more than the sync it would save.
        const Micros window =
            std::min(static_cast<Micros>(lane.ewma_sync_us / 2), config_.max_group_wait);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::microseconds(window);
        while (!stop_ && lane.queue.size() < config_.max_batch &&
               static_cast<double>(lane.queue.size()) < lane.ewma_batch) {
          waited = true;
          if (!lane.work_cv.wait_until(lock, deadline)) break;
        }
        if (stop_) return;
      }
      const std::size_t take = std::min(lane.queue.size(), config_.max_batch);
      batch.assign(lane.queue.begin(), lane.queue.begin() + static_cast<std::ptrdiff_t>(take));
      lane.queue.erase(lane.queue.begin(), lane.queue.begin() + static_cast<std::ptrdiff_t>(take));
    }
    // One stable-storage write for the whole batch (group commit). Lanes
    // overlap here: this sleep happens outside the shared mutex.
    const Micros sync_start = now_micros();
    lane.sync_model.charge();
    const Micros sync_us = now_micros() - sync_start;
    batch_hist.record(static_cast<Micros>(batch.size()));
    sync_hist.record(sync_us);
    {
      MutexLock lock(mutex_);
      // EWMAs react in a few batches but smooth over jitter (alpha = 1/4).
      lane.ewma_sync_us += (static_cast<double>(sync_us) - lane.ewma_sync_us) / 4;
      lane.ewma_batch += (static_cast<double>(batch.size()) - lane.ewma_batch) / 4;
      for (auto& p : batch) {
        stats_.live_bytes += static_cast<std::int64_t>(p->ws.byte_size());
        records_[p->ws.commit_ts] = p->ws;
        p->done = true;
        ++stats_.appends;
      }
      stats_.live_records = static_cast<std::int64_t>(records_.size());
      ++stats_.batches;
      if (waited) ++stats_.group_waits;
    }
    done_cv_.notify_all();
  }
}

std::vector<WriteSet> TxnLog::fetch_after(Timestamp after_ts) const {
  MutexLock lock(mutex_);
  std::vector<WriteSet> out;
  for (auto it = records_.upper_bound(after_ts); it != records_.end(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<WriteSet> TxnLog::fetch_client_after(const std::string& client_id,
                                                 Timestamp after_ts) const {
  MutexLock lock(mutex_);
  std::vector<WriteSet> out;
  for (auto it = records_.upper_bound(after_ts); it != records_.end(); ++it) {
    if (it->second.client_id == client_id) out.push_back(it->second);
  }
  return out;
}

void TxnLog::truncate_through(Timestamp up_to) {
  MutexLock lock(mutex_);
  auto end = records_.upper_bound(up_to);
  for (auto it = records_.begin(); it != end;) {
    stats_.live_bytes -= static_cast<std::int64_t>(it->second.byte_size());
    it = records_.erase(it);
    ++stats_.truncated;
  }
  stats_.live_records = static_cast<std::int64_t>(records_.size());
}

TxnLogStats TxnLog::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace tfr
