#include "src/txn/txn_log.h"

#include <algorithm>
#include <functional>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace tfr {

TxnLog::TxnLog(TxnLogConfig config)
    : config_(config),
      gc_task_([this] { gc_now(); }, config.gc_interval > 0 ? config.gc_interval : millis(20)) {
  const int lanes = std::max(1, config.lanes);
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->sync_model.set(config.sync_latency, config.sync_jitter);
    lane->segments.emplace_back();  // the initial active segment
    lanes_.push_back(std::move(lane));
  }
  for (auto& lane : lanes_) {
    lane->appender = std::thread([this, lane = lane.get()] { appender_loop(*lane); });
  }
  {
    MutexLock lock(mutex_);
    stats_.segments = static_cast<std::int64_t>(lanes_.size());
    export_gauges_locked();
  }
  if (config.gc_interval > 0) gc_task_.start();
}

TxnLog::~TxnLog() {
  gc_task_.stop();
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  for (auto& lane : lanes_) lane->work_cv.notify_all();
  done_cv_.notify_all();
  for (auto& lane : lanes_) {
    if (lane->appender.joinable()) lane->appender.join();
  }
}

Status TxnLog::append(WriteSet ws) {
  TFR_BLOCKING_POINT("txn_log.append");
  if (ws.commit_ts == kNoTimestamp) {
    return Status::invalid_argument("write-set has no commit timestamp");
  }
  // Route by client: a client's commits serialize through one logging node,
  // different clients' batches overlap across lanes.
  Lane& lane = *lanes_[std::hash<std::string>{}(ws.client_id) % lanes_.size()];
  auto pending = std::make_shared<Pending>();
  pending->ws = std::move(ws);
  {
    MutexLock lock(mutex_);
    lane.queue.push_back(pending);
    lane.work_cv.notify_one();
    while (!pending->done && !stop_) done_cv_.wait(lock);
    if (!pending->done) return Status::closed("txn log shut down");
  }
  return Status::ok();
}

void TxnLog::insert_locked(Lane& lane, WriteSet ws) {
  Segment* active = &lane.segments.back();
  if (active->sealed || active->records.size() >= config_.segment_records) {
    // Seal and open a fresh active segment. index_ts inherits the running
    // max so the per-lane index stays monotone even if a straggler commit
    // landed out of order across the boundary.
    active->sealed = true;
    lane.segments.emplace_back();
    Segment& fresh = lane.segments.back();
    fresh.index_ts = active->index_ts;
    active = &fresh;
    ++stats_.segments;
  }
  const Timestamp ts = ws.commit_ts;
  const auto bytes = static_cast<std::int64_t>(ws.byte_size());
  active->records[ts] = std::move(ws);
  active->max_ts = std::max(active->max_ts, ts);
  active->index_ts = std::max(active->index_ts, ts);
  active->bytes += static_cast<std::size_t>(bytes);
  ++stats_.retained_records;
  stats_.retained_bytes += bytes;
  if (ts > floor_) {
    ++stats_.live_records;
    stats_.live_bytes += bytes;
  } else {
    // A commit at or below an already-published TP cannot happen (TP only
    // covers flushed-and-persisted transactions), but count it as truncated
    // rather than corrupting the live totals if it ever does.
    ++stats_.truncated;
  }
}

void TxnLog::appender_loop(Lane& lane) {
  static Histogram& batch_hist = global_histogram("log.batch_size");
  static Histogram& sync_hist = global_histogram("log.sync_wait");
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    bool waited = false;
    {
      MutexLock lock(mutex_);
      while (lane.queue.empty() && !stop_) lane.work_cv.wait(lock);
      if (stop_) return;
      if (config_.adaptive && lane.queue.size() < config_.max_batch &&
          static_cast<double>(lane.queue.size()) < lane.ewma_batch) {
        // The queue at wake is shallower than the recent batch size: more
        // appenders are likely mid-flight, so hold the sync briefly to let
        // them join. The window is worth at most half a sync — beyond that
        // the wait costs more than the sync it would save.
        const Micros window =
            std::min(static_cast<Micros>(lane.ewma_sync_us / 2), config_.max_group_wait);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::microseconds(window);
        while (!stop_ && lane.queue.size() < config_.max_batch &&
               static_cast<double>(lane.queue.size()) < lane.ewma_batch) {
          waited = true;
          if (!lane.work_cv.wait_until(lock, deadline)) break;
        }
        if (stop_) return;
      }
      const std::size_t take = std::min(lane.queue.size(), config_.max_batch);
      batch.assign(lane.queue.begin(), lane.queue.begin() + static_cast<std::ptrdiff_t>(take));
      lane.queue.erase(lane.queue.begin(), lane.queue.begin() + static_cast<std::ptrdiff_t>(take));
    }
    // One stable-storage write for the whole batch (group commit). Lanes
    // overlap here: this sleep happens outside the shared mutex.
    const Micros sync_start = now_micros();
    lane.sync_model.charge();
    const Micros sync_us = now_micros() - sync_start;
    batch_hist.record(static_cast<Micros>(batch.size()));
    sync_hist.record(sync_us);
    {
      MutexLock lock(mutex_);
      // EWMAs react in a few batches but smooth over jitter (alpha = 1/4).
      lane.ewma_sync_us += (static_cast<double>(sync_us) - lane.ewma_sync_us) / 4;
      lane.ewma_batch += (static_cast<double>(batch.size()) - lane.ewma_batch) / 4;
      for (auto& p : batch) {
        insert_locked(lane, std::move(p->ws));
        p->done = true;
        ++stats_.appends;
      }
      ++stats_.batches;
      if (waited) ++stats_.group_waits;
      export_gauges_locked();
    }
    done_cv_.notify_all();
  }
}

std::vector<WriteSet> TxnLog::fetch_after(Timestamp after_ts) const {
  MutexLock lock(mutex_);
  const Timestamp after = std::max(after_ts, floor_);
  std::vector<WriteSet> out;
  for (const auto& lane : lanes_) {
    // Binary-search the segment index: index_ts is the monotone running max
    // per lane, so every segment before the partition point holds only
    // records <= after and is skipped without touching its map.
    const auto first = std::partition_point(
        lane->segments.begin(), lane->segments.end(),
        [after](const Segment& seg) { return seg.index_ts <= after; });
    for (auto seg = first; seg != lane->segments.end(); ++seg) {
      for (auto it = seg->records.upper_bound(after); it != seg->records.end(); ++it) {
        out.push_back(it->second);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WriteSet& a, const WriteSet& b) { return a.commit_ts < b.commit_ts; });
  return out;
}

std::vector<WriteSet> TxnLog::fetch_client_after(const std::string& client_id,
                                                 Timestamp after_ts) const {
  MutexLock lock(mutex_);
  const Timestamp after = std::max(after_ts, floor_);
  std::vector<WriteSet> out;
  // Client routing pins every record of `client_id` to one lane, but stay
  // agnostic to the routing function and scan all lanes' indexes — the
  // skip-by-index bound is what matters.
  for (const auto& lane : lanes_) {
    const auto first = std::partition_point(
        lane->segments.begin(), lane->segments.end(),
        [after](const Segment& seg) { return seg.index_ts <= after; });
    for (auto seg = first; seg != lane->segments.end(); ++seg) {
      for (auto it = seg->records.upper_bound(after); it != seg->records.end(); ++it) {
        if (it->second.client_id == client_id) out.push_back(it->second);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WriteSet& a, const WriteSet& b) { return a.commit_ts < b.commit_ts; });
  return out;
}

void TxnLog::truncate_through(Timestamp up_to) {
  MutexLock lock(mutex_);
  if (up_to <= floor_) return;  // idempotent; lower checkpoints are no-ops
  // Logical truncation: count exactly the records in (floor_, up_to] and
  // advance the floor. Each record is visited by this loop at most once
  // across the log's lifetime, so truncation stays amortized O(1) per
  // record no matter how often the RM checkpoints.
  const Timestamp old_floor = floor_;
  for (const auto& lane : lanes_) {
    const auto first = std::partition_point(
        lane->segments.begin(), lane->segments.end(),
        [old_floor](const Segment& seg) { return seg.index_ts <= old_floor; });
    for (auto seg = first; seg != lane->segments.end(); ++seg) {
      const auto begin = seg->records.upper_bound(old_floor);
      const auto end = seg->records.upper_bound(up_to);
      for (auto it = begin; it != end; ++it) {
        ++stats_.truncated;
        --stats_.live_records;
        stats_.live_bytes -= static_cast<std::int64_t>(it->second.byte_size());
      }
    }
  }
  floor_ = up_to;
  gc_locked();
}

void TxnLog::gc_now() {
  MutexLock lock(mutex_);
  gc_locked();
}

void TxnLog::gc_locked() {
  static Counter& reclaimed = global_counter("log.gc_bytes_reclaimed");
  for (const auto& lane : lanes_) {
    // Seal an oversized active segment even if appends paused, so an idle
    // lane's tail still becomes GC-eligible.
    Segment& active = lane->segments.back();
    if (!active.sealed && active.records.size() >= config_.segment_records) {
      active.sealed = true;
      lane->segments.emplace_back();
      lane->segments.back().index_ts = active.index_ts;
      ++stats_.segments;
    }
    // Delete whole sealed segments strictly below the floor (Algorithm 4).
    // Oldest-first; stop at the first survivor — a later segment's own max
    // can in principle dip below an earlier one's (boundary straggler), but
    // retaining it until the front drains keeps the index intact and costs
    // at most one segment of slack.
    while (lane->segments.size() > 1 && lane->segments.front().sealed &&
           lane->segments.front().max_ts <= floor_) {
      Segment& dead = lane->segments.front();
      stats_.retained_records -= static_cast<std::int64_t>(dead.records.size());
      stats_.retained_bytes -= static_cast<std::int64_t>(dead.bytes);
      ++stats_.gc_segments;
      stats_.gc_bytes_reclaimed += static_cast<std::int64_t>(dead.bytes);
      reclaimed.add(static_cast<std::int64_t>(dead.bytes));
      --stats_.segments;
      gc_watermark_ = std::max(gc_watermark_, dead.max_ts);
      lane->segments.pop_front();
    }
  }
  export_gauges_locked();
}

void TxnLog::export_gauges_locked() {
  static Gauge& segments_gauge = global_gauge("log.segments");
  static Gauge& retained_gauge = global_gauge("log.retained_txns");
  segments_gauge.set(stats_.segments);
  retained_gauge.set(stats_.retained_records);
}

Timestamp TxnLog::gc_watermark() const {
  MutexLock lock(mutex_);
  return gc_watermark_;
}

TxnLogStats TxnLog::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace tfr
