// TxnManager — the independent transaction management component (§2.2).
// Provides:
//
//  * a timestamp oracle issuing monotonically increasing commit timestamps
//    that define the serialization order;
//  * snapshot-isolation concurrency control via a first-committer-wins
//    write-write conflict check (the paper's TM is SI-based, §4.1);
//  * durability: the commit point is the group-commit append of the
//    write-set to the recovery log — nothing needs to be persisted in the
//    key-value store before commit returns.
//
// The commit-timestamp listener: the client's flush tracker (Algorithm 1)
// must learn commit timestamps *in commit order* with no gaps, otherwise its
// threshold TF(c) could advance past a transaction it has not seen. The
// listener is therefore invoked synchronously inside the oracle's critical
// section, and `current_ts()` takes the same lock — so after current_ts()
// returns C, the listener of every transaction with ts <= C has completed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>

#include "src/txn/txn_log.h"

namespace tfr {

struct TxnHandle {
  std::uint64_t txn_id = 0;
  Timestamp start_ts = kNoTimestamp;
  std::string client_id;  // empty for anonymous transactions
};

struct TxnManagerStats {
  std::int64_t commits = 0;
  std::int64_t aborts_conflict = 0;
  std::int64_t aborts_explicit = 0;
};

class TxnManager {
 public:
  explicit TxnManager(TxnLogConfig log_config);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Start a transaction reading at snapshot `start_ts` (the client picks
  /// its snapshot; see TxnClient::begin). `client_id` ties the open
  /// transaction to its client so abandon_client() can reap it.
  TxnHandle begin(Timestamp start_ts, const std::string& client_id = "");

  using TsListener = std::function<void(Timestamp)>;

  /// Attempt to commit. On success the write-set is durable in the recovery
  /// log and the commit timestamp is returned; `ts_listener` (may be null)
  /// has been invoked with it inside the ordering critical section.
  /// Returns Aborted on a write-write conflict (first committer wins).
  Result<Timestamp> commit(const TxnHandle& txn, WriteSet ws, const TsListener& ts_listener);

  /// Abort: the buffered write-set is simply discarded (§2.2); nothing is
  /// logged or flushed.
  void abort(const TxnHandle& txn);

  /// Reap every transaction a dead client left open (the paper treats them
  /// as aborted — they were never logged). Without this, their snapshots
  /// would pin the conflict-table prune floor forever. Called by the
  /// recovery manager after client-failure handling.
  void abandon_client(const std::string& client_id);

  /// Last issued commit timestamp. Serialized with commit-ts assignment —
  /// see the header comment for why this matters to Algorithm 1.
  Timestamp current_ts() const;

  /// Checkpoint from the recovery manager: transactions at or below the
  /// global persist threshold TP can leave the log, and the conflict table
  /// can forget rows older than any snapshot still in use.
  void checkpoint(Timestamp tp);

  TxnLog& log() { return log_; }
  const TxnLog& log() const { return log_; }
  TxnManagerStats stats() const;

 private:
  void prune_conflicts_locked() TFR_REQUIRES(mutex_);

  TxnLog log_;

  mutable RankedMutex<LockRank::kTxnManager> mutex_{"txn_manager"};  // oracle + conflicts + active
  Timestamp last_ts_ TFR_GUARDED_BY(mutex_) = kNoTimestamp;
  std::unordered_map<std::string, Timestamp> last_writer_
      TFR_GUARDED_BY(mutex_);  // table\x1f row -> commit ts
  std::set<Timestamp> active_start_ts_ TFR_GUARDED_BY(mutex_);  // multiset via count map
  std::unordered_map<Timestamp, int> active_count_ TFR_GUARDED_BY(mutex_);
  // Open transactions per client (txn_id -> start_ts), for abandon_client.
  std::unordered_map<std::string, std::unordered_map<std::uint64_t, Timestamp>> open_by_client_
      TFR_GUARDED_BY(mutex_);
  Timestamp prune_floor_ TFR_GUARDED_BY(mutex_) = kNoTimestamp;  // from checkpoint()
  std::uint64_t commits_since_prune_ TFR_GUARDED_BY(mutex_) = 0;
  TxnManagerStats stats_ TFR_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> next_txn_id_{1};
};

}  // namespace tfr
