// TxnLog — the transaction manager's recovery log (§2.2). A transaction is
// *committed* the moment its write-set, commit timestamp, and client id are
// durable here; everything downstream (flush to region servers, WAL sync,
// memstore flush) happens after commit and is covered by this log until the
// global persist threshold TP passes the transaction.
//
// The paper's logging sub-component "supports group commit, has access to
// its own high performance stable storage, and can be distributed across
// several nodes should one logging node not be sufficient" (§4.1). All
// three are implemented:
//
//   * group commit — appenders block until their record is durable; a
//     dedicated appender thread batches all waiting records into a single
//     stable-storage write, charging the sync latency once per batch;
//   * configurable stable-storage latency;
//   * distribution — `lanes` independent logging nodes, each with its own
//     appender and stable storage; appends are routed by client so the
//     lanes' storage writes overlap. fetch/truncate present the union, in
//     commit order, regardless of which lane holds a record.
//
// Storage is organised as commit-timestamp-ordered *segments* per lane
// (DESIGN.md §8). The active segment absorbs appends until it reaches
// `segment_records`, then seals and a fresh one opens. Truncation
// (Algorithm 4) is logical: `truncate_through(TP)` advances a floor that
// fetch filters against, so record-granular semantics are exact; physical
// reclamation is segment-granular and asynchronous — a background GC pass
// deletes whole sealed segments whose every record sits at or below the
// floor. Segment max-timestamps form a monotone index per lane, so fetch
// binary-searches to the first segment that can contain a survivor instead
// of scanning all retained records.
//
// It also provides the recovery-manager interface: fetch committed
// write-sets after a threshold (optionally for one client), and truncate
// below the global checkpoint TP (§3.2: "transactions with timestamp
// T < TP may be truncated from the recovery log").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/status.h"
#include "src/common/threading.h"
#include "src/kv/types.h"

namespace tfr {

struct TxnLogConfig {
  Micros sync_latency = 0;  ///< stable-storage write per group-commit batch
  Micros sync_jitter = 0;
  std::size_t max_batch = 256;  ///< cap on write-sets per batch
  int lanes = 1;  ///< independent logging nodes (paper §4.1)

  /// Adaptive group commit: when an appender wakes to a queue shallower than
  /// the recent batch size, it holds the stable-storage write for a short
  /// accumulation window — bounded by half the observed sync latency and by
  /// `max_group_wait` — so stragglers join the batch instead of paying a sync
  /// of their own. With `adaptive = false` every wake syncs immediately (the
  /// legacy fixed-batch behaviour, kept flag-selectable for the bench A/B).
  /// Batch sizes and sync waits are exported as the `log.batch_size` /
  /// `log.sync_wait` global histograms either way.
  bool adaptive = true;
  Micros max_group_wait = millis(2);  ///< hard cap on the accumulation window

  /// Records per lane segment before the active segment seals. Small enough
  /// that the retained suffix above TP spans few partially-dead segments,
  /// large enough that the per-lane segment index stays short.
  std::size_t segment_records = 512;
  /// Background GC cadence; 0 disables the thread (physical reclamation then
  /// happens only inline on truncate_through / gc_now, which tests use for
  /// determinism).
  Micros gc_interval = millis(20);
};

struct TxnLogStats {
  std::int64_t appends = 0;
  std::int64_t batches = 0;
  std::int64_t truncated = 0;     ///< records logically below the floor
  std::int64_t live_records = 0;  ///< records above the floor (replayable)
  std::int64_t live_bytes = 0;
  std::int64_t group_waits = 0;  ///< batches that held for the adaptive window
  // Physical (segment) view: retained = still occupying memory, whether or
  // not logically truncated; GC moves retained -> reclaimed a whole sealed
  // segment at a time.
  std::int64_t segments = 0;          ///< live segments across all lanes
  std::int64_t retained_records = 0;  ///< records still held in segments
  std::int64_t retained_bytes = 0;
  std::int64_t gc_segments = 0;        ///< sealed segments physically deleted
  std::int64_t gc_bytes_reclaimed = 0;
};

class TxnLog {
 public:
  explicit TxnLog(TxnLogConfig config);
  ~TxnLog();

  TxnLog(const TxnLog&) = delete;
  TxnLog& operator=(const TxnLog&) = delete;

  /// Append a committed write-set; blocks until it is durable (group
  /// commit). `ws.commit_ts` must be set and unique.
  TFR_BLOCKING Status append(WriteSet ws);

  /// All durable write-sets with commit_ts > after_ts (and above the
  /// truncation floor), in commit order.
  std::vector<WriteSet> fetch_after(Timestamp after_ts) const;

  /// The durable write-sets committed by `client_id` after `after_ts`
  /// (Algorithm 2: fetchlogs(c, TF(c))).
  std::vector<WriteSet> fetch_client_after(const std::string& client_id,
                                           Timestamp after_ts) const;

  /// Checkpoint: logically drop every record with commit_ts <= up_to. Safe
  /// once the global persist threshold TP has passed them. Physical
  /// segment reclamation happens on the next GC pass.
  void truncate_through(Timestamp up_to);

  /// Run one synchronous GC pass: seal oversized active segments and delete
  /// sealed segments entirely at or below the truncation floor. The
  /// background thread calls this on `gc_interval`; tests call it directly
  /// for deterministic reclamation.
  void gc_now();

  /// Highest commit timestamp ever physically deleted by segment GC
  /// (kNoTimestamp before the first reclaim). The cascading-failure soak
  /// checks this never overtakes a live recovery floor.
  Timestamp gc_watermark() const;

  TxnLogStats stats() const;
  int lanes() const { return static_cast<int>(lanes_.size()); }

 private:
  struct Pending {
    WriteSet ws;
    bool done = false;
  };

  /// One commit-timestamp-ordered slab of records. `index_ts` is the
  /// running max of commit timestamps across this and all earlier segments
  /// of the lane — monotone by construction, so the lane's segment deque
  /// can be binary-searched by threshold. `max_ts` is the segment's own
  /// max, the exact GC-eligibility bound.
  struct Segment {
    std::map<Timestamp, WriteSet> records;
    Timestamp max_ts = kNoTimestamp;
    Timestamp index_ts = kNoTimestamp;
    std::size_t bytes = 0;
    bool sealed = false;
  };

  // Lane state is guarded by the shared mutex_ (TSA cannot name an outer
  // member from a nested struct, so the queue carries no annotation).
  struct Lane {
    CondVar work_cv;
    std::vector<std::shared_ptr<Pending>> queue;
    std::thread appender;
    LatencyModel sync_model;
    // Oldest-first; back() is the active segment (never GC'd).
    std::deque<Segment> segments;
    // Adaptive group-commit state (touched only by this lane's appender,
    // under mutex_): exponential averages of the observed sync latency and
    // batch size that size the accumulation window.
    double ewma_sync_us = 0;
    double ewma_batch = 1;
  };

  void appender_loop(Lane& lane);
  void insert_locked(Lane& lane, WriteSet ws) TFR_REQUIRES(mutex_);
  void gc_locked() TFR_REQUIRES(mutex_);
  void export_gauges_locked() TFR_REQUIRES(mutex_);

  TxnLogConfig config_;

  mutable RankedMutex<LockRank::kTxnLog> mutex_{"txn_log"};  // queues + segments + stats
  CondVar done_cv_;  // clients wait for durability
  bool stop_ TFR_GUARDED_BY(mutex_) = false;
  TxnLogStats stats_ TFR_GUARDED_BY(mutex_);
  Timestamp floor_ TFR_GUARDED_BY(mutex_) = kNoTimestamp;  // truncate_through high-water
  Timestamp gc_watermark_ TFR_GUARDED_BY(mutex_) = kNoTimestamp;

  std::vector<std::unique_ptr<Lane>> lanes_;
  PeriodicTask gc_task_;
};

}  // namespace tfr
