// TxnLog — the transaction manager's recovery log (§2.2). A transaction is
// *committed* the moment its write-set, commit timestamp, and client id are
// durable here; everything downstream (flush to region servers, WAL sync,
// memstore flush) happens after commit and is covered by this log until the
// global persist threshold TP passes the transaction.
//
// The paper's logging sub-component "supports group commit, has access to
// its own high performance stable storage, and can be distributed across
// several nodes should one logging node not be sufficient" (§4.1). All
// three are implemented:
//
//   * group commit — appenders block until their record is durable; a
//     dedicated appender thread batches all waiting records into a single
//     stable-storage write, charging the sync latency once per batch;
//   * configurable stable-storage latency;
//   * distribution — `lanes` independent logging nodes, each with its own
//     appender and stable storage; appends are routed by client so the
//     lanes' storage writes overlap. fetch/truncate present the union, in
//     commit order, regardless of which lane holds a record.
//
// It also provides the recovery-manager interface: fetch committed
// write-sets after a threshold (optionally for one client), and truncate
// below the global checkpoint TP (§3.2: "transactions with timestamp
// T < TP may be truncated from the recovery log").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/status.h"
#include "src/kv/types.h"

namespace tfr {

struct TxnLogConfig {
  Micros sync_latency = 0;  ///< stable-storage write per group-commit batch
  Micros sync_jitter = 0;
  std::size_t max_batch = 256;  ///< cap on write-sets per batch
  int lanes = 1;  ///< independent logging nodes (paper §4.1)

  /// Adaptive group commit: when an appender wakes to a queue shallower than
  /// the recent batch size, it holds the stable-storage write for a short
  /// accumulation window — bounded by half the observed sync latency and by
  /// `max_group_wait` — so stragglers join the batch instead of paying a sync
  /// of their own. With `adaptive = false` every wake syncs immediately (the
  /// legacy fixed-batch behaviour, kept flag-selectable for the bench A/B).
  /// Batch sizes and sync waits are exported as the `log.batch_size` /
  /// `log.sync_wait` global histograms either way.
  bool adaptive = true;
  Micros max_group_wait = millis(2);  ///< hard cap on the accumulation window
};

struct TxnLogStats {
  std::int64_t appends = 0;
  std::int64_t batches = 0;
  std::int64_t truncated = 0;
  std::int64_t live_records = 0;
  std::int64_t live_bytes = 0;
  std::int64_t group_waits = 0;  ///< batches that held for the adaptive window
};

class TxnLog {
 public:
  explicit TxnLog(TxnLogConfig config);
  ~TxnLog();

  TxnLog(const TxnLog&) = delete;
  TxnLog& operator=(const TxnLog&) = delete;

  /// Append a committed write-set; blocks until it is durable (group
  /// commit). `ws.commit_ts` must be set and unique.
  Status append(WriteSet ws);

  /// All durable write-sets with commit_ts > after_ts, in commit order.
  std::vector<WriteSet> fetch_after(Timestamp after_ts) const;

  /// The durable write-sets committed by `client_id` after `after_ts`
  /// (Algorithm 2: fetchlogs(c, TF(c))).
  std::vector<WriteSet> fetch_client_after(const std::string& client_id,
                                           Timestamp after_ts) const;

  /// Checkpoint: drop every record with commit_ts <= up_to. Safe once the
  /// global persist threshold TP has passed them.
  void truncate_through(Timestamp up_to);

  TxnLogStats stats() const;
  int lanes() const { return static_cast<int>(lanes_.size()); }

 private:
  struct Pending {
    WriteSet ws;
    bool done = false;
  };

  // Lane state is guarded by the shared mutex_ (TSA cannot name an outer
  // member from a nested struct, so the queue carries no annotation).
  struct Lane {
    CondVar work_cv;
    std::vector<std::shared_ptr<Pending>> queue;
    std::thread appender;
    LatencyModel sync_model;
    // Adaptive group-commit state (touched only by this lane's appender,
    // under mutex_): exponential averages of the observed sync latency and
    // batch size that size the accumulation window.
    double ewma_sync_us = 0;
    double ewma_batch = 1;
  };

  void appender_loop(Lane& lane);

  TxnLogConfig config_;

  mutable Mutex mutex_{LockRank::kTxnLog, "txn_log"};  // queues + records + stats
  CondVar done_cv_;  // clients wait for durability
  std::map<Timestamp, WriteSet> records_ TFR_GUARDED_BY(mutex_);  // durable, by commit ts
  bool stop_ TFR_GUARDED_BY(mutex_) = false;
  TxnLogStats stats_ TFR_GUARDED_BY(mutex_);

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace tfr
