// YCSB-style transactional workloads.
//
// The paper's evaluation (§4.1) extends YCSB with "a simple type of update
// transaction that executes 10 random row operations, with a 50/50 ratio of
// reads/updates" — that is the default `WorkloadConfig`. The standard YCSB
// core workload mixes A-F are also provided (each op folded into the same
// transactional execution), so the harness can characterise the system
// beyond the paper's single workload.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/kv/types.h"

namespace tfr {

enum class KeyDistribution { kUniform, kZipfian, kLatest };

/// Operation mix (fractions; they should sum to 1).
struct OpMix {
  double read = 0.5;
  double update = 0.5;
  double insert = 0;
  double scan = 0;
  double read_modify_write = 0;
};

struct WorkloadConfig {
  std::string table = "usertable";
  std::uint64_t num_rows = 100'000;
  int ops_per_txn = 10;
  OpMix mix;  // default: the paper's 50/50 read/update
  KeyDistribution distribution = KeyDistribution::kUniform;
  std::size_t value_size = 100;
  std::size_t scan_length = 10;
};

/// The standard YCSB core workloads, transactionalized. `which` is 'a'..'f'.
WorkloadConfig ycsb_core_workload(char which, std::uint64_t num_rows);

/// Shared mutable workload state: the insert frontier (workloads D/E grow
/// the table; the "latest" distribution reads near it).
class WorkloadState {
 public:
  explicit WorkloadState(std::uint64_t initial_rows) : next_key_(initial_rows) {}

  std::uint64_t allocate_insert_key() { return next_key_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t frontier() const { return next_key_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> next_key_;
};

/// Per-thread key chooser for the configured distribution. The "latest"
/// distribution picks keys zipfian-close to the insert frontier.
class KeyChooser {
 public:
  KeyChooser(const WorkloadConfig& cfg, const WorkloadState& state);

  std::uint64_t next(Rng& rng);

 private:
  KeyDistribution distribution_;
  const WorkloadState* state_;
  std::unique_ptr<IndexChooser> base_;
  std::unique_ptr<ZipfianChooser> recency_;  // for kLatest
};

}  // namespace tfr
