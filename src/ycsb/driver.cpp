#include "src/ycsb/driver.h"

#include <thread>

#include "src/common/logging.h"

namespace tfr {

YcsbDriver::YcsbDriver(Testbed& testbed, WorkloadConfig workload, DriverConfig config)
    : testbed_(&testbed),
      workload_(workload),
      config_(config),
      state_(workload.num_rows),
      series_(config.series_interval,
              static_cast<std::size_t>(config.duration / config.series_interval) + 8) {}

void YcsbDriver::schedule(Micros at, std::string label, std::function<void()> action) {
  events_.push_back(DriverEvent{at, std::move(action), std::move(label)});
}

int YcsbDriver::run_txn(TxnClient& client, KeyChooser& chooser, Rng& rng) {
  Transaction txn = client.begin(workload_.table);
  const OpMix& mix = workload_.mix;
  for (int op = 0; op < workload_.ops_per_txn; ++op) {
    const double dice = rng.next_double();
    if (dice < mix.read) {
      const std::string row = Testbed::row_key(chooser.next(rng));
      auto value = txn.get(row, "field0");
      if (!value.is_ok()) {
        txn.abort();
        return -1;
      }
    } else if (dice < mix.read + mix.update) {
      const std::string row = Testbed::row_key(chooser.next(rng));
      txn.put(row, "field0", random_ascii(rng, workload_.value_size));
    } else if (dice < mix.read + mix.update + mix.insert) {
      const std::string row = Testbed::row_key(state_.allocate_insert_key());
      txn.put(row, "field0", random_ascii(rng, workload_.value_size));
    } else if (dice < mix.read + mix.update + mix.insert + mix.scan) {
      const std::string start = Testbed::row_key(chooser.next(rng));
      auto cells = txn.scan(start, "", workload_.scan_length);
      if (!cells.is_ok()) {
        txn.abort();
        return -1;
      }
    } else {
      // read-modify-write on one key (YCSB workload F).
      const std::string row = Testbed::row_key(chooser.next(rng));
      auto value = txn.get(row, "field0");
      if (!value.is_ok()) {
        txn.abort();
        return -1;
      }
      txn.put(row, "field0", random_ascii(rng, workload_.value_size));
    }
  }
  auto committed = txn.commit();
  if (committed.is_ok()) return 1;
  return committed.status().is_aborted() ? 0 : -1;
}

void YcsbDriver::worker(int index, Histogram& latencies, std::atomic<std::uint64_t>& committed,
                        std::atomic<std::uint64_t>& aborted,
                        std::atomic<std::uint64_t>& errors) {
  Rng rng(config_.seed * 1000003 + static_cast<std::uint64_t>(index));
  KeyChooser chooser(workload_, state_);
  TxnClient& client = testbed_->client(index % testbed_->num_clients());
  const Micros pace =
      config_.target_tps > 0 ? static_cast<Micros>(1e6 / config_.target_tps) : 0;

  while (!stop_.load(std::memory_order_acquire)) {
    Micros begin = 0;
    if (pace > 0) {
      // Open-loop pacing: claim the next global start slot. Latency is
      // measured from the *scheduled* slot, so queueing delay when the
      // system falls behind the offered load is charged to response time
      // (avoids coordinated omission).
      const Micros slot = next_slot_.fetch_add(pace, std::memory_order_relaxed);
      const Micros now = now_micros();
      if (slot > now) {
        sleep_micros(slot - now);
        if (stop_.load(std::memory_order_acquire)) break;
      }
      begin = slot;
    } else {
      begin = now_micros();
    }
    const int outcome = run_txn(client, chooser, rng);
    const Micros latency = now_micros() - begin;
    switch (outcome) {
      case 1:
        committed.fetch_add(1, std::memory_order_relaxed);
        latencies.record(latency);
        series_.record(latency);
        break;
      case 0:
        aborted.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        errors.fetch_add(1, std::memory_order_relaxed);
        series_.record_error();
        break;
    }
  }
}

DriverReport YcsbDriver::run() {
  Histogram latencies;
  std::atomic<std::uint64_t> committed{0}, aborted{0}, errors{0};

  series_.start();
  next_slot_.store(now_micros(), std::memory_order_relaxed);
  const Micros t0 = now_micros();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    threads.emplace_back(
        [this, i, &latencies, &committed, &aborted, &errors] {
          worker(i, latencies, committed, aborted, errors);
        });
  }

  // Event loop: fire scheduled actions at their offsets, then stop at the
  // configured duration.
  std::vector<DriverEvent*> pending;
  for (auto& e : events_) pending.push_back(&e);
  std::sort(pending.begin(), pending.end(),
            [](const DriverEvent* a, const DriverEvent* b) { return a->at < b->at; });
  std::size_t next_event = 0;
  for (;;) {
    const Micros elapsed = now_micros() - t0;
    if (next_event < pending.size() && elapsed >= pending[next_event]->at) {
      TFR_LOG(INFO, "driver") << "event @" << elapsed / 1000 << "ms: "
                              << pending[next_event]->label;
      pending[next_event]->action();
      ++next_event;
      continue;
    }
    if (elapsed >= config_.duration) break;
    Micros next_wake = config_.duration - elapsed;
    if (next_event < pending.size()) {
      next_wake = std::min(next_wake, pending[next_event]->at - elapsed);
    }
    sleep_micros(std::min<Micros>(next_wake, millis(20)));
  }

  stop_.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double wall = static_cast<double>(now_micros() - t0) / 1e6;

  DriverReport report;
  report.wall_seconds = wall;
  report.committed = committed.load();
  report.aborted = aborted.load();
  report.errors = errors.load();
  report.throughput_tps = static_cast<double>(report.committed) / wall;
  report.mean_latency_ms = latencies.mean() / 1000.0;
  report.p50_latency_ms = static_cast<double>(latencies.percentile(50)) / 1000.0;
  report.p99_latency_ms = static_cast<double>(latencies.percentile(99)) / 1000.0;
  report.max_latency_ms = static_cast<double>(latencies.max()) / 1000.0;
  report.series = series_.snapshot();
  return report;
}

}  // namespace tfr
