#include "src/ycsb/workload.h"

namespace tfr {

WorkloadConfig ycsb_core_workload(char which, std::uint64_t num_rows) {
  WorkloadConfig cfg;
  cfg.num_rows = num_rows;
  cfg.ops_per_txn = 10;
  cfg.distribution = KeyDistribution::kZipfian;
  switch (which) {
    case 'a':  // update heavy
      cfg.mix = OpMix{0.5, 0.5, 0, 0, 0};
      break;
    case 'b':  // read mostly
      cfg.mix = OpMix{0.95, 0.05, 0, 0, 0};
      break;
    case 'c':  // read only
      cfg.mix = OpMix{1.0, 0, 0, 0, 0};
      break;
    case 'd':  // read latest
      cfg.mix = OpMix{0.95, 0, 0.05, 0, 0};
      cfg.distribution = KeyDistribution::kLatest;
      break;
    case 'e':  // short ranges
      cfg.mix = OpMix{0, 0, 0.05, 0.95, 0};
      cfg.ops_per_txn = 2;  // scans are heavy; keep transactions short
      break;
    case 'f':  // read-modify-write
      cfg.mix = OpMix{0.5, 0, 0, 0, 0.5};
      break;
    default:
      break;  // the paper's default mix
  }
  return cfg;
}

KeyChooser::KeyChooser(const WorkloadConfig& cfg, const WorkloadState& state)
    : distribution_(cfg.distribution), state_(&state) {
  switch (cfg.distribution) {
    case KeyDistribution::kZipfian:
      base_ = std::make_unique<ScrambledZipfianChooser>(cfg.num_rows);
      break;
    case KeyDistribution::kLatest:
      // Offsets from the insert frontier, zipfian-skewed toward 0 (= the
      // most recent row), as in YCSB's SkewedLatestGenerator.
      recency_ = std::make_unique<ZipfianChooser>(cfg.num_rows);
      break;
    case KeyDistribution::kUniform:
      base_ = std::make_unique<UniformChooser>(cfg.num_rows);
      break;
  }
}

std::uint64_t KeyChooser::next(Rng& rng) {
  if (distribution_ == KeyDistribution::kLatest) {
    const std::uint64_t frontier = state_->frontier();
    const std::uint64_t back = recency_->next(rng);
    return back >= frontier ? 0 : frontier - 1 - back;
  }
  return base_->next(rng);
}

}  // namespace tfr
