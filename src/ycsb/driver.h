// Multi-threaded closed/open-loop benchmark driver over a Testbed. Each
// worker thread repeatedly executes one YCSB transaction (begin, N random
// read/update ops, commit) against a transactional client, records the
// end-to-end response time, and feeds the per-second time series used to
// draw the paper's Figure 3.
//
// Throttling: with target_tps > 0 the driver paces transaction *starts* at
// the target rate (open loop): each thread atomically claims the next start
// slot and sleeps until it. When the system cannot keep up, response times
// grow — the saturation behaviour of Figure 2(a).
//
// Fault events: callers can schedule arbitrary actions (e.g. crash a
// server) at an offset from the start of the measurement.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/testbed/testbed.h"
#include "src/ycsb/workload.h"

namespace tfr {

struct DriverConfig {
  int threads = 50;
  double target_tps = 0;  ///< 0 = closed loop (as fast as possible)
  Micros duration = seconds(30);
  Micros series_interval = seconds(1);
  std::uint64_t seed = 42;
};

struct DriverEvent {
  Micros at;                    ///< offset from measurement start
  std::function<void()> action;
  std::string label;
};

struct DriverReport {
  double wall_seconds = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t errors = 0;
  double throughput_tps = 0;     ///< committed / wall
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  double max_latency_ms = 0;
  std::vector<SeriesPoint> series;
};

class YcsbDriver {
 public:
  YcsbDriver(Testbed& testbed, WorkloadConfig workload, DriverConfig config);

  /// Schedule an action at `at` after measurement start (call before run()).
  void schedule(Micros at, std::string label, std::function<void()> action);

  /// Run the workload to completion and report.
  DriverReport run();

 private:
  void worker(int index, Histogram& latencies, std::atomic<std::uint64_t>& committed,
              std::atomic<std::uint64_t>& aborted, std::atomic<std::uint64_t>& errors);

  /// One transaction; returns: 1 committed, 0 aborted, -1 error.
  int run_txn(TxnClient& client, KeyChooser& chooser, Rng& rng);

  Testbed* testbed_;
  WorkloadConfig workload_;
  DriverConfig config_;
  WorkloadState state_;
  std::vector<DriverEvent> events_;

  TimeSeriesRecorder series_;
  std::atomic<Micros> next_slot_{0};  // open-loop pacing cursor (absolute us)
  std::atomic<bool> stop_{false};
};

}  // namespace tfr
