#include "src/coord/coord.h"

#include "src/common/logging.h"

namespace tfr {

namespace {
std::string key_of(const std::string& group, const std::string& name) {
  return group + "/" + name;
}
}  // namespace

Coord::Coord(Micros check_interval)
    : checker_([this] { expiry_scan(); }, check_interval) {
  checker_.start();
}

Coord::~Coord() { checker_.stop(); }

Status Coord::create_session(const std::string& group, const std::string& name, Micros ttl,
                             HeartbeatPayload initial_payload) {
  TFR_BLOCKING_POINT("coord.create_session");
  MutexLock lock(mutex_);
  const auto key = key_of(group, name);
  auto it = sessions_.find(key);
  if (it != sessions_.end() && it->second.info.alive) {
    return Status::already_exists("live session exists: " + key);
  }
  Session s;
  s.info.name = name;
  s.info.group = group;
  s.info.payload = initial_payload;
  s.info.last_heartbeat = now_micros();
  s.ttl = ttl;
  sessions_[key] = std::move(s);
  return Status::ok();
}

Status Coord::heartbeat(const std::string& group, const std::string& name,
                        HeartbeatPayload payload) {
  TFR_BLOCKING_POINT("coord.heartbeat");
  SessionInfo info;
  std::vector<SessionListener> to_notify;
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(key_of(group, name));
    if (it == sessions_.end() || !it->second.info.alive) {
      // The node was already declared dead; its messages are ignored until
      // recovery completes (paper §3.1). It must terminate itself.
      return Status::unavailable("session declared dead: " + key_of(group, name));
    }
    Session& s = it->second;
    const Micros now = now_micros();
    if (now - s.info.last_heartbeat <= s.ttl) {
      s.info.last_heartbeat = now;
      s.info.payload = payload;
      return Status::ok();
    }
    // The TTL has already lapsed: whether this heartbeat or the periodic
    // expiry scan observes the lapse first must not change the outcome. A
    // silent renewal here would resurrect a session the rest of the system
    // is entitled to assume dead — without the expiry listeners ever firing.
    // Expire it now (the scan can no longer see it, so listeners fire
    // exactly once) and refuse the renewal.
    s.info.alive = false;
    info = s.info;
    TFR_LOG(INFO, "coord") << "session expired on late heartbeat: " << it->first
                           << " (last payload " << s.info.payload << ")";
    auto lit = listeners_.find(group);
    if (lit != listeners_.end()) {
      for (auto& [id, l] : lit->second) to_notify.push_back(l);
    }
    sessions_.erase(it);
    ++callbacks_in_flight_;
  }
  for (auto& l : to_notify) l(info, /*expired=*/true);
  {
    MutexLock lock(mutex_);
    --callbacks_in_flight_;
  }
  quiesce_cv_.notify_all();
  return Status::unavailable("session expired: " + key_of(group, name));
}

Status Coord::update_ttl(const std::string& group, const std::string& name, Micros ttl) {
  TFR_BLOCKING_POINT("coord.update_ttl");
  MutexLock lock(mutex_);
  auto it = sessions_.find(key_of(group, name));
  if (it == sessions_.end() || !it->second.info.alive) {
    return Status::not_found("no live session: " + key_of(group, name));
  }
  it->second.ttl = ttl;
  it->second.info.last_heartbeat = now_micros();
  return Status::ok();
}

Status Coord::close_session(const std::string& group, const std::string& name) {
  SessionInfo info;
  std::vector<SessionListener> to_notify;
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(key_of(group, name));
    if (it == sessions_.end() || !it->second.info.alive) {
      return Status::not_found("no live session: " + key_of(group, name));
    }
    it->second.info.alive = false;
    info = it->second.info;
    sessions_.erase(it);
    auto lit = listeners_.find(group);
    if (lit != listeners_.end()) {
      for (auto& [id, l] : lit->second) to_notify.push_back(l);
    }
    ++callbacks_in_flight_;
  }
  for (auto& l : to_notify) l(info, /*expired=*/false);
  {
    MutexLock lock(mutex_);
    --callbacks_in_flight_;
  }
  quiesce_cv_.notify_all();
  return Status::ok();
}

std::vector<SessionInfo> Coord::live_sessions(const std::string& group) const {
  MutexLock lock(mutex_);
  std::vector<SessionInfo> out;
  for (const auto& [key, s] : sessions_) {
    if (s.info.group == group && s.info.alive) out.push_back(s.info);
  }
  return out;
}

std::optional<SessionInfo> Coord::session(const std::string& group,
                                          const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(key_of(group, name));
  if (it == sessions_.end()) return std::nullopt;
  return it->second.info;
}

int Coord::add_listener(const std::string& group, SessionListener listener) {
  MutexLock lock(mutex_);
  const int id = next_listener_id_++;
  listeners_[group].emplace_back(id, std::move(listener));
  return id;
}

void Coord::remove_listener(const std::string& group, int id) {
  MutexLock lock(mutex_);
  auto it = listeners_.find(group);
  if (it != listeners_.end()) {
    auto& vec = it->second;
    for (auto vit = vec.begin(); vit != vec.end(); ++vit) {
      if (vit->first == id) {
        vec.erase(vit);
        break;
      }
    }
  }
  // Quiesce: a callback batch may have copied this listener before the
  // erase; wait until no callback is executing so the caller can safely
  // destroy the listener's target.
  while (callbacks_in_flight_ != 0) quiesce_cv_.wait(lock);
}

void Coord::put(const std::string& path, std::int64_t value) {
  MutexLock lock(mutex_);
  kv_[path] = value;
}

std::optional<std::int64_t> Coord::get(const std::string& path) const {
  MutexLock lock(mutex_);
  auto it = kv_.find(path);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

void Coord::erase(const std::string& path) {
  MutexLock lock(mutex_);
  kv_.erase(path);
}

std::vector<std::pair<std::string, std::int64_t>> Coord::list(const std::string& prefix) const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (auto it = kv_.lower_bound(prefix); it != kv_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

void Coord::run_expiry_check() { expiry_scan(); }

void Coord::expiry_scan() {
  std::vector<std::pair<SessionInfo, std::vector<SessionListener>>> expired;
  {
    MutexLock lock(mutex_);
    ++callbacks_in_flight_;
    const Micros now = now_micros();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session& s = it->second;
      if (s.info.alive && now - s.info.last_heartbeat > s.ttl) {
        s.info.alive = false;
        TFR_LOG(INFO, "coord") << "session expired: " << it->first
                               << " (last payload " << s.info.payload << ")";
        std::vector<SessionListener> to_call;
        auto lit = listeners_.find(s.info.group);
        if (lit != listeners_.end()) {
          for (auto& [id, l] : lit->second) to_call.push_back(l);
        }
        expired.emplace_back(s.info, std::move(to_call));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [info, ls] : expired) {
    for (auto& l : ls) l(info, /*expired=*/true);
  }
  {
    MutexLock lock(mutex_);
    --callbacks_in_flight_;
  }
  quiesce_cv_.notify_all();
}

}  // namespace tfr
