// minizk — a ZooKeeper-like coordination service, used exactly the way the
// paper uses ZooKeeper (§3.3):
//
//  * heartbeat transport: clients and region servers open a *session* with a
//    TTL and renew it with heartbeat() calls that carry a small payload (the
//    threshold timestamp of Algorithms 1 and 3);
//  * failure detection: a background expiry checker declares a session dead
//    after the TTL lapses and invokes the registered expiry listeners (the
//    recovery manager and the master subscribe);
//  * a small durable KV namespace where the recovery manager publishes the
//    global thresholds TF and TP, so (a) servers can fetch TF on their own
//    heartbeat without talking to the RM and (b) a restarted RM can catch up
//    with the system's progress while transaction processing continues.
//
// The service itself is assumed reliable (ZooKeeper is replicated).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/annotations.h"
#include "src/common/threading.h"

namespace tfr {

/// What a heartbeat payload carries; opaque to the coordination service.
using HeartbeatPayload = std::int64_t;

struct SessionInfo {
  std::string name;             ///< owner, e.g. "client-3" or "rs1"
  std::string group;            ///< "clients" or "servers"
  HeartbeatPayload payload = 0; ///< last piggybacked threshold
  Micros last_heartbeat = 0;
  bool alive = true;
};

/// Invoked (on the expiry-checker thread) when a session dies or is cleanly
/// closed. `expired` is true for TTL expiry (failure), false for clean close.
using SessionListener = std::function<void(const SessionInfo& session, bool expired)>;

class Coord {
 public:
  /// `check_interval`: how often the expiry checker scans sessions.
  explicit Coord(Micros check_interval = millis(10));
  ~Coord();

  Coord(const Coord&) = delete;
  Coord& operator=(const Coord&) = delete;

  // --- sessions -----------------------------------------------------------

  /// Open a session. `name` must be unique among live sessions of the group.
  /// The session expires if not renewed within `ttl`. `initial_payload` is
  /// the threshold reported until the first heartbeat, so a fresh session is
  /// never observed with a meaningless payload.
  TFR_BLOCKING Status create_session(const std::string& group, const std::string& name, Micros ttl,
                        HeartbeatPayload initial_payload = 0);

  /// Renew the session and update its piggybacked payload. Returns
  /// Unavailable if the session has already been declared dead — the paper
  /// requires messages from a declared-dead node to be ignored.
  TFR_BLOCKING Status heartbeat(const std::string& group, const std::string& name, HeartbeatPayload payload);

  /// Adjust a live session's TTL (e.g. after reconfiguring the heartbeat
  /// interval at runtime). Also counts as a renewal.
  TFR_BLOCKING Status update_ttl(const std::string& group, const std::string& name, Micros ttl);

  /// Clean shutdown: unregister without triggering failure handling.
  Status close_session(const std::string& group, const std::string& name);

  /// Live sessions of a group, with their latest payloads.
  std::vector<SessionInfo> live_sessions(const std::string& group) const;

  std::optional<SessionInfo> session(const std::string& group, const std::string& name) const;

  /// Register a listener for expiry / clean close of sessions in `group`.
  /// Returns an id for remove_listener.
  int add_listener(const std::string& group, SessionListener listener);

  /// Unregister a listener (e.g. before its owner is destroyed). Blocks
  /// until no listener callback is in flight, so after it returns the
  /// removed listener will never run again. Safe with an unknown id; must
  /// not be called from inside a listener callback.
  void remove_listener(const std::string& group, int id);

  // --- durable KV namespace -----------------------------------------------

  void put(const std::string& path, std::int64_t value);
  std::optional<std::int64_t> get(const std::string& path) const;

  /// Delete a KV entry; no-op when absent.
  void erase(const std::string& path);

  /// All KV entries whose path starts with `prefix`, sorted by path. The
  /// recovery manager uses this to reload its in-flight recovery markers
  /// after a restart (§3.3).
  std::vector<std::pair<std::string, std::int64_t>> list(const std::string& prefix) const;

  /// Force one expiry scan now (tests use this to avoid timing sleeps).
  void run_expiry_check();

 private:
  void expiry_scan();

  struct Session {
    SessionInfo info;
    Micros ttl = 0;
  };

  mutable RankedMutex<LockRank::kCoord> mutex_{"coord"};
  std::map<std::string, Session> sessions_ TFR_GUARDED_BY(mutex_);  // key = group + "/" + name
  std::map<std::string, std::vector<std::pair<int, SessionListener>>> listeners_
      TFR_GUARDED_BY(mutex_);
  int next_listener_id_ TFR_GUARDED_BY(mutex_) = 1;
  int callbacks_in_flight_ TFR_GUARDED_BY(mutex_) = 0;
  CondVar quiesce_cv_;
  std::map<std::string, std::int64_t> kv_ TFR_GUARDED_BY(mutex_);
  PeriodicTask checker_;
};

}  // namespace tfr
