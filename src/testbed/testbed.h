// Testbed — composes the whole integrated system of Figure 1: the DFS, the
// coordination service, the minibase cluster, the transaction manager, the
// recovery manager, the per-server persist trackers, and a set of
// transactional clients. This is the deployment that the examples, the
// integration tests, and every benchmark drive; it also exposes the fault
// injectors (crash a server, crash a client, restart the recovery manager).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/client/txn_client.h"
#include "src/kv/cluster.h"
#include "src/recovery/persist_tracker.h"
#include "src/common/annotations.h"
#include "src/recovery/recovery_manager.h"
#include "src/txn/txn_manager.h"

namespace tfr {

struct TestbedConfig {
  ClusterConfig cluster;
  TxnLogConfig txn_log;
  RecoveryManagerConfig recovery;
  TxnClientConfig client;
  int num_clients = 1;

  /// When false, the system runs without the recovery middleware: no
  /// trackers, no heartbeats processed, no replay — the "unprotected"
  /// baseline used by the overhead benchmarks.
  bool enable_recovery = true;
};

/// A convenient all-zero-latency configuration for unit/integration tests
/// (fast heartbeats, fast detection).
TestbedConfig fast_test_config(int num_servers = 2, int num_clients = 1);

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  Status start();
  void stop();

  // --- components -----------------------------------------------------------

  Cluster& cluster() { return cluster_; }
  Dfs& dfs() { return cluster_.dfs(); }
  Coord& coord() { return cluster_.coord(); }
  Master& master() { return cluster_.master(); }
  TxnManager& tm() { return tm_; }
  RecoveryManager& rm() { return *rm_; }
  bool has_rm() const { return rm_ != nullptr; }

  int num_clients() const { return static_cast<int>(clients_.size()); }
  TxnClient& client(int i = 0) { return *clients_.at(static_cast<std::size_t>(i)); }

  /// Add (and start) one more client at runtime.
  Result<TxnClient*> add_client();

  // --- table / data helpers ---------------------------------------------------

  /// YCSB-style row key: "user" + zero-padded index.
  static std::string row_key(std::uint64_t i);

  /// Evenly spaced split keys for `num_rows` row_key()-keyed rows.
  static std::vector<std::string> split_keys(std::uint64_t num_rows, int num_regions);

  /// Create a table pre-split for `num_rows` rows across `num_regions`.
  Status create_table(const std::string& table, std::uint64_t num_rows, int num_regions);

  /// Load `num_rows` rows (column "field0", `value_size`-byte values)
  /// through the transactional path, in batches; waits until fully flushed.
  Status load_rows(const std::string& table, std::uint64_t num_rows, std::size_t value_size,
                   std::uint64_t seed = 1);

  /// Flush every region's memstore to store files (so subsequent reads
  /// exercise the block cache / DFS path).
  Status flush_all_memstores();

  /// Read every row once to populate the block caches (the paper warms the
  /// cache before each experiment, §4.1).
  Status warm_cache(const std::string& table, std::uint64_t num_rows);

  // --- fault injection ---------------------------------------------------------

  /// Crash-fail region server i; detection and recovery proceed via the
  /// coordination service, the master, and the recovery manager.
  void crash_server(int i) { cluster_.crash_server(i); }

  /// Crash-fail client i (heartbeats stop; flushes die mid-flight).
  void crash_client(int i) { clients_.at(static_cast<std::size_t>(i))->crash(); }

  /// The cluster-wide deterministic fault injector (transient RPC errors,
  /// dropped acks, wire corruption, slow/failing DFS syncs). See
  /// common/fault.h; disabled until rules are added.
  FaultInjector& fault() { return cluster_.fault(); }

  /// Simulate a recovery-manager failure and restart (§3.3): the registries
  /// are rebuilt from the coordination service.
  void restart_recovery_manager();

  /// Block until all in-flight failure handling (master + RM) has finished.
  void wait_for_recovery();

  /// Block until the recovery manager has *started* handling at least
  /// `count` server (resp. client) failures. Failure detection is
  /// asynchronous (missed heartbeats), so call this after crash_server /
  /// crash_client and before wait_for_recovery. Returns false on timeout.
  bool wait_server_recoveries(std::int64_t count, Micros timeout = seconds(30));
  bool wait_client_recoveries(std::int64_t count, Micros timeout = seconds(30));

  /// Block until the published global flush threshold TF has reached `ts`,
  /// i.e. stable-snapshot readers see every transaction up to `ts`.
  /// Returns false on timeout (e.g. TF is blocked by an unavailable region).
  bool wait_stable(Timestamp ts, Micros timeout = seconds(30));

 private:
  TestbedConfig config_;
  Cluster cluster_;
  TxnManager tm_;
  /// Guards rm_ against the restart swap: region gates (server threads) read
  /// it shared; restart_recovery_manager() takes it exclusively. Lock order:
  /// rm_->stop() must complete BEFORE the exclusive lock is requested — a
  /// gate blocked inside on_region_recovered holds the shared lock for the
  /// whole replay.
  mutable RankedSharedMutex<LockRank::kHarness> rm_mutex_{"testbed.rm"};
  std::unique_ptr<RecoveryManager> rm_;
  std::vector<std::unique_ptr<PersistTracker>> trackers_;
  std::vector<std::unique_ptr<TxnClient>> clients_;
  bool started_ = false;
};

}  // namespace tfr
