#include "src/testbed/testbed.h"

#include <cstdio>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace tfr {

TestbedConfig fast_test_config(int num_servers, int num_clients) {
  TestbedConfig cfg;
  cfg.cluster.num_servers = num_servers;
  cfg.cluster.coord_check_interval = millis(5);
  cfg.cluster.server.heartbeat_interval = millis(20);
  cfg.cluster.server.session_ttl = millis(100);
  cfg.cluster.server.wal_sync_interval = millis(10);
  cfg.num_clients = num_clients;
  cfg.client.heartbeat_interval = millis(20);
  cfg.client.session_ttl = millis(100);
  cfg.client.flush_backoff = millis(1);
  cfg.recovery.poll_interval = millis(10);
  return cfg;
}

Testbed::Testbed(TestbedConfig config)
    : config_(config), cluster_(config.cluster), tm_(config.txn_log) {
  if (config_.enable_recovery) {
    rm_ = std::make_unique<RecoveryManager>(cluster_.coord(), tm_, cluster_.master(),
                                            config_.recovery);
    // Install the recovery middleware on every region server before it
    // starts: the persist tracker (Algorithm 3) and the region gate (§3.2).
    cluster_.set_server_setup([this](RegionServer& server) {
      auto tracker = std::make_unique<PersistTracker>(
          server,
          [this]() -> Timestamp {
            auto tf = cluster_.coord().get(kTfPath);
            return tf ? *tf : kNoTimestamp;
          },
          rm_->global_tp());
      tracker->install();
      server.set_region_gate([this](const std::string& region, const std::string& server_id) {
        // Shared-lock the RM pointer for the whole (possibly long) replay:
        // a concurrent RM restart waits for in-flight gates, and a gate that
        // fires during the swap window lands on the fresh instance — which
        // has reloaded the pending-region markers, so the replay still runs.
        ReaderLock lock(rm_mutex_);
        if (rm_) rm_->on_region_recovered(region, server_id);
      });
      trackers_.push_back(std::move(tracker));
    });
  }
}

Testbed::~Testbed() { stop(); }

Status Testbed::start() {
  if (rm_) rm_->start();  // publish TF/TP before anyone reads them
  TFR_RETURN_IF_ERROR(cluster_.start());
  for (int i = 0; i < config_.num_clients; ++i) {
    auto r = add_client();
    if (!r.is_ok()) return r.status();
  }
  started_ = true;
  return Status::ok();
}

void Testbed::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& c : clients_) {
    if (!c->crashed()) {
      TFR_IGNORE_STATUS(c->close(),
                        "harness teardown; an unflushed client reads as a crash, which the RM recovers");
    }
  }
  if (rm_) rm_->stop();
  cluster_.stop();
}

Result<TxnClient*> Testbed::add_client() {
  auto client = std::make_unique<TxnClient>(
      "client-" + std::to_string(clients_.size() + 1), tm_, cluster_.master(), cluster_.coord(),
      config_.client);
  TFR_RETURN_IF_ERROR(client->start());
  clients_.push_back(std::move(client));
  return clients_.back().get();
}

std::string Testbed::row_key(std::uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::vector<std::string> Testbed::split_keys(std::uint64_t num_rows, int num_regions) {
  std::vector<std::string> keys;
  for (int r = 1; r < num_regions; ++r) {
    keys.push_back(row_key(num_rows * static_cast<std::uint64_t>(r) /
                           static_cast<std::uint64_t>(num_regions)));
  }
  return keys;
}

Status Testbed::create_table(const std::string& table, std::uint64_t num_rows, int num_regions) {
  return cluster_.master().create_table(table, split_keys(num_rows, num_regions));
}

Status Testbed::load_rows(const std::string& table, std::uint64_t num_rows,
                          std::size_t value_size, std::uint64_t seed) {
  if (clients_.empty()) return Status::invalid_argument("no clients");
  Rng rng(seed);
  TxnClient& loader = *clients_.front();
  constexpr std::uint64_t kBatch = 500;
  for (std::uint64_t base = 0; base < num_rows; base += kBatch) {
    Transaction txn = loader.begin(table);
    const std::uint64_t end = std::min(num_rows, base + kBatch);
    for (std::uint64_t i = base; i < end; ++i) {
      txn.put(row_key(i), "field0", random_ascii(rng, value_size));
    }
    auto committed = txn.commit();
    if (!committed.is_ok()) return committed.status();
  }
  if (!loader.wait_flushed(seconds(120))) {
    return Status::timeout("load flush did not drain");
  }
  return Status::ok();
}

Status Testbed::flush_all_memstores() {
  for (int i = 0; i < cluster_.num_servers(); ++i) {
    RegionServer& s = cluster_.server(i);
    if (!s.alive()) continue;
    for (const auto& name : s.region_names()) {
      if (auto region = s.region(name)) {
        TFR_RETURN_IF_ERROR(region->flush_memstore());
      }
    }
  }
  return Status::ok();
}

Status Testbed::warm_cache(const std::string& table, std::uint64_t num_rows) {
  if (clients_.empty()) return Status::invalid_argument("no clients");
  TxnClient& c = *clients_.front();
  // Scan the whole table in chunks at the freshest snapshot.
  Transaction txn = c.begin(table);
  constexpr std::uint64_t kChunk = 5000;
  for (std::uint64_t base = 0; base < num_rows; base += kChunk) {
    const std::string start = row_key(base);
    const std::string end = row_key(std::min(num_rows, base + kChunk));
    auto cells = txn.scan(start, base + kChunk >= num_rows ? "" : end, 0);
    if (!cells.is_ok()) return cells.status();
  }
  txn.abort();
  return Status::ok();
}

void Testbed::restart_recovery_manager() {
  if (!rm_) return;
  TFR_LOG(INFO, "testbed") << "recovery manager restarting";
  // Stop the old instance BEFORE taking rm_mutex_ exclusively: its worker
  // may be re-flushing into a gated region, and that gate holds the shared
  // lock — taking the exclusive lock first would deadlock.
  rm_->stop();
  // Detach the master from the dying instance before it is destroyed
  // (set_hooks quiesces in-flight hook calls); the fresh instance
  // re-installs itself in start().
  cluster_.master().set_hooks(nullptr);
  // Transaction processing continues while the RM is down (§3.3); a new RM
  // instance rebuilds its registries — including in-flight recoveries —
  // from the coordination service.
  auto fresh = std::make_unique<RecoveryManager>(cluster_.coord(), tm_, cluster_.master(),
                                                 config_.recovery);
  {
    // Waits for in-flight gates (they hold the shared lock for the whole
    // replay). recover_state() must run inside this critical section: a gate
    // finishing on the old instance erases its durable marker, so reading
    // the markers before quiescing could adopt a pending region that is
    // about to complete — and then wait for it forever.
    WriterLock lock(rm_mutex_);
    fresh->recover_state();
    rm_ = std::move(fresh);  // destroys the old, stopped instance
  }
  rm_->start();
}

bool Testbed::wait_stable(Timestamp ts, Micros timeout) {
  const Micros deadline = now_micros() + timeout;
  for (;;) {
    auto tf = cluster_.coord().get(kTfPath);
    if (tf && *tf >= ts) return true;
    if (now_micros() > deadline) return false;
    // Nudge the pipeline along: client heartbeats piggyback TF(c), the RM
    // poll folds them into the published TF.
    for (auto& c : clients_) {
      if (!c->crashed()) c->heartbeat_now();
    }
    if (rm_) rm_->refresh_now();
    sleep_micros(millis(1));
  }
}

void Testbed::wait_for_recovery() {
  cluster_.master().wait_for_idle();
  if (rm_) rm_->wait_for_idle();
}

bool Testbed::wait_server_recoveries(std::int64_t count, Micros timeout) {
  if (!rm_) return false;
  const Micros deadline = now_micros() + timeout;
  while (rm_->stats().server_recoveries < count) {
    if (now_micros() > deadline) return false;
    sleep_micros(millis(1));
  }
  return true;
}

bool Testbed::wait_client_recoveries(std::int64_t count, Micros timeout) {
  if (!rm_) return false;
  const Micros deadline = now_micros() + timeout;
  while (rm_->stats().client_recoveries < count) {
    if (now_micros() > deadline) return false;
    sleep_micros(millis(1));
  }
  return true;
}

}  // namespace tfr
