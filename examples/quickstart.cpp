// Quickstart: bring up the integrated system (DFS + minibase + transaction
// manager + recovery middleware), run a few transactions, crash a region
// server mid-stream, and show that every committed transaction survives.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/common/logging.h"
#include "src/testbed/testbed.h"

using namespace tfr;

int main() {
  set_log_level(LogLevel::kINFO);

  // A small two-server deployment with fast heartbeats so the demo is quick.
  TestbedConfig cfg = fast_test_config(/*num_servers=*/2, /*num_clients=*/1);
  Testbed bed(cfg);
  if (auto s = bed.start(); !s.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  // Create a table pre-split into 4 regions and write some rows.
  if (auto s = bed.create_table("accounts", /*num_rows=*/1000, /*num_regions=*/4); !s.is_ok()) {
    std::fprintf(stderr, "create_table failed: %s\n", s.to_string().c_str());
    return 1;
  }

  TxnClient& client = bed.client();

  // Transaction 1: create two accounts.
  {
    Transaction txn = client.begin("accounts");
    txn.put(Testbed::row_key(1), "balance", "100");
    txn.put(Testbed::row_key(2), "balance", "250");
    auto ts = txn.commit();
    if (!ts.is_ok()) {
      std::fprintf(stderr, "commit failed: %s\n", ts.status().to_string().c_str());
      return 1;
    }
    std::printf("created accounts, commit ts = %lld\n",
                static_cast<long long>(ts.value()));
    // Wait until the stable snapshot covers this transaction so the next
    // transaction's reads see it.
    client.wait_flushed();
    bed.wait_stable(ts.value());
  }

  // Transaction 2: transfer 50 from account 1 to account 2, reading our own
  // snapshot along the way.
  Timestamp transfer_ts = kNoTimestamp;
  {
    Transaction txn = client.begin("accounts");
    auto a = txn.get(Testbed::row_key(1), "balance");
    auto b = txn.get(Testbed::row_key(2), "balance");
    const int balance_a = std::stoi(a.value().value());
    const int balance_b = std::stoi(b.value().value());
    txn.put(Testbed::row_key(1), "balance", std::to_string(balance_a - 50));
    txn.put(Testbed::row_key(2), "balance", std::to_string(balance_b + 50));
    auto ts = txn.commit();
    if (!ts.is_ok()) {
      std::fprintf(stderr, "transfer failed: %s\n", ts.status().to_string().c_str());
      return 1;
    }
    transfer_ts = ts.value();
    std::printf("transfer committed at ts = %lld (durable in the TM log; the "
                "flush to the store happens after commit)\n",
                static_cast<long long>(transfer_ts));
  }

  // Crash a region server *right now* — the transfer may not even have been
  // flushed yet, and nothing the server had in memory was persisted.
  std::printf("\n--- crashing region server rs1 ---\n");
  bed.crash_server(0);
  bed.wait_for_recovery();
  std::printf("--- recovery complete ---\n\n");

  // Let the interrupted flush finish and the stable snapshot catch up.
  client.wait_flushed();
  bed.wait_stable(transfer_ts);

  // Every committed value is still there.
  {
    Transaction txn = client.begin("accounts");
    auto a = txn.get(Testbed::row_key(1), "balance");
    auto b = txn.get(Testbed::row_key(2), "balance");
    std::printf("after recovery: balance1 = %s, balance2 = %s\n",
                a.value().value_or("?").c_str(), b.value().value_or("?").c_str());
    txn.abort();
    if (a.value().value_or("") != "50" || b.value().value_or("") != "300") {
      std::fprintf(stderr, "FAILED: committed data lost!\n");
      return 1;
    }
  }

  std::printf("OK: no committed transaction was lost.\n");
  bed.stop();
  return 0;
}
