// ycsb_runner — a small CLI around the YCSB-style transactional workload
// driver (§4.1): bring up the integrated system, load a table, run a timed
// workload, optionally crash a server mid-run, and print the summary plus a
// per-second time series. This is the example to start from when measuring
// your own configurations.
//
//   $ ./examples/ycsb_runner [options]
//     --rows N          table size               (default 20000)
//     --threads N       client threads           (default 50)
//     --tps N           offered load, 0=closed   (default 0)
//     --seconds N       measured duration        (default 10)
//     --servers N       region servers           (default 2)
//     --zipfian         zipfian key choice       (default uniform)
//     --workload X      YCSB core workload a..f  (default: the paper's mix)
//     --sync            synchronous persistence  (default async)
//     --crash-at N      crash rs1 after N seconds (default: no crash)
//     --series          print the per-second series
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"

using namespace tfr;
using namespace tfr::bench;

int main(int argc, char** argv) {
  std::uint64_t rows = 20'000;
  int threads = 50;
  double tps = 0;
  int run_seconds = 10;
  int servers = 2;
  bool zipfian = false;
  char core_workload = 0;
  bool sync_mode = false;
  int crash_at = -1;
  bool print_series = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (arg == "--rows") rows = std::strtoull(next(), nullptr, 10);
    else if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--tps") tps = std::atof(next());
    else if (arg == "--seconds") run_seconds = std::atoi(next());
    else if (arg == "--servers") servers = std::atoi(next());
    else if (arg == "--zipfian") zipfian = true;
    else if (arg == "--workload") core_workload = next()[0];
    else if (arg == "--sync") sync_mode = true;
    else if (arg == "--crash-at") crash_at = std::atoi(next());
    else if (arg == "--series") print_series = true;
    else {
      std::fprintf(stderr, "unknown option: %s (see header comment)\n", arg.c_str());
      return 2;
    }
  }

  std::printf("# tfr-kv YCSB runner: rows=%llu threads=%d tps=%.0f seconds=%d servers=%d "
              "%s persistence, workload=%s%s\n",
              static_cast<unsigned long long>(rows), threads, tps, run_seconds, servers,
              sync_mode ? "synchronous" : "asynchronous",
              core_workload != 0 ? std::string(1, core_workload).c_str()
                                 : (zipfian ? "paper/zipfian" : "paper/uniform"),
              crash_at >= 0 ? ", crash mid-run" : "");

  Testbed bed(paper_config(servers, sync_mode));
  if (auto s = prepare(bed, rows, std::max(4, servers * 2)); !s.is_ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.to_string().c_str());
    return 1;
  }

  WorkloadConfig w;
  if (core_workload != 0) {
    w = ycsb_core_workload(core_workload, rows);
  } else {
    w.num_rows = rows;
    if (zipfian) w.distribution = KeyDistribution::kZipfian;
  }
  DriverConfig d;
  d.threads = threads;
  d.target_tps = tps;
  d.duration = seconds(run_seconds);

  YcsbDriver driver(bed, w, d);
  if (crash_at >= 0) {
    driver.schedule(seconds(crash_at), "crash rs1", [&] { bed.crash_server(0); });
  }
  const auto report = driver.run();
  if (crash_at >= 0) {
    bed.wait_server_recoveries(1);
    bed.wait_for_recovery();
  }
  const bool drained = bed.client().wait_flushed(seconds(120));

  print_report_row("result", report);
  if (crash_at >= 0) {
    std::printf("recovery: %lld regions recovered, %lld write-sets replayed, "
                "flush backlog drained: %s\n",
                static_cast<long long>(bed.rm().stats().regions_recovered),
                static_cast<long long>(bed.rm().stats().writesets_replayed_server),
                drained ? "yes" : "NO");
  }
  if (print_series) {
    std::printf("\n%-8s %-14s %-12s\n", "t_s", "tps", "mean_ms");
    for (const auto& p : report.series) {
      std::printf("%-8.0f %-14.1f %-12.2f\n", p.t_seconds, p.throughput, p.mean_latency_ms);
    }
  }
  return 0;
}
