// Bank-ledger example — the classic OLTP workload the paper's introduction
// motivates: an application that "cannot compromise on the standard
// transactional guarantees" but wants the elastic scalability of a
// distributed key-value store.
//
// A pool of teller threads runs transfer transactions between accounts
// while a region server crash-fails mid-run. The invariant audited at the
// end is the strongest one a ledger has: the total balance is conserved —
// which only holds if every committed transfer survived the failure
// atomically (both legs or neither).
//
//   $ ./examples/bank_ledger
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/testbed/testbed.h"

using namespace tfr;

namespace {

constexpr int kAccounts = 2000;
constexpr int kInitialBalance = 1000;
constexpr int kTellers = 8;
constexpr int kTransfersPerTeller = 150;

std::string account_key(int i) { return Testbed::row_key(static_cast<std::uint64_t>(i)); }

}  // namespace

int main() {
  set_log_level(LogLevel::kWARN);  // keep the narration short

  TestbedConfig cfg = fast_test_config(/*num_servers=*/3, /*num_clients=*/2);
  Testbed bed(cfg);
  if (auto s = bed.start(); !s.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  if (auto s = bed.create_table("ledger", kAccounts, 6); !s.is_ok()) {
    std::fprintf(stderr, "create_table failed: %s\n", s.to_string().c_str());
    return 1;
  }

  // Open the accounts in batches.
  std::printf("opening %d accounts with balance %d...\n", kAccounts, kInitialBalance);
  for (int base = 0; base < kAccounts; base += 500) {
    Transaction txn = bed.client(0).begin("ledger");
    for (int i = base; i < std::min(kAccounts, base + 500); ++i) {
      txn.put(account_key(i), "balance", std::to_string(kInitialBalance));
    }
    if (auto ts = txn.commit(); !ts.is_ok()) {
      std::fprintf(stderr, "load commit failed: %s\n", ts.status().to_string().c_str());
      return 1;
    }
  }
  bed.client(0).wait_flushed();
  bed.wait_stable(bed.tm().current_ts());

  // Teller threads transfer random amounts between random accounts.
  std::atomic<int> committed{0}, conflicts{0};
  auto teller = [&](int id) {
    Rng rng(static_cast<std::uint64_t>(id) * 7919 + 13);
    TxnClient& client = bed.client(id % 2);
    for (int t = 0; t < kTransfersPerTeller; ++t) {
      const int from = static_cast<int>(rng.next_below(kAccounts));
      int to = static_cast<int>(rng.next_below(kAccounts));
      if (to == from) to = (to + 1) % kAccounts;
      const int amount = static_cast<int>(rng.next_below(50)) + 1;

      Transaction txn = client.begin("ledger");
      auto from_balance = txn.get(account_key(from), "balance");
      auto to_balance = txn.get(account_key(to), "balance");
      if (!from_balance.is_ok() || !to_balance.is_ok()) {
        txn.abort();
        continue;
      }
      const int fb = std::stoi(from_balance.value().value_or("0"));
      const int tb = std::stoi(to_balance.value().value_or("0"));
      if (fb < amount) {
        txn.abort();  // insufficient funds
        continue;
      }
      txn.put(account_key(from), "balance", std::to_string(fb - amount));
      txn.put(account_key(to), "balance", std::to_string(tb + amount));
      if (txn.commit().is_ok()) {
        ++committed;
      } else {
        ++conflicts;  // first-committer-wins: somebody touched an account
      }
    }
  };

  std::printf("running %d tellers (%d transfers each) with a server crash mid-run...\n",
              kTellers, kTransfersPerTeller);
  std::vector<std::thread> tellers;
  for (int i = 0; i < kTellers; ++i) tellers.emplace_back(teller, i);

  sleep_millis(100);
  std::printf(">>> crashing region server rs1\n");
  bed.crash_server(0);

  for (auto& t : tellers) t.join();
  bed.wait_server_recoveries(1);
  bed.wait_for_recovery();
  bed.client(0).wait_flushed();
  bed.client(1).wait_flushed();
  bed.wait_stable(bed.tm().current_ts());

  // Audit: the money supply must be exactly conserved.
  long long total = 0;
  int rows = 0;
  Transaction audit = bed.client(1).begin("ledger");
  auto cells = audit.scan("", "", 0);
  if (!cells.is_ok()) {
    std::fprintf(stderr, "audit scan failed: %s\n", cells.status().to_string().c_str());
    return 1;
  }
  for (const auto& c : cells.value()) {
    if (c.column == "balance") {
      total += std::stoll(c.value);
      ++rows;
    }
  }
  audit.abort();

  const long long expected = static_cast<long long>(kAccounts) * kInitialBalance;
  std::printf("\ntransfers committed: %d, conflict aborts: %d\n", committed.load(),
              conflicts.load());
  std::printf("accounts: %d (expected %d)\n", rows, kAccounts);
  std::printf("total balance: %lld (expected %lld)\n", total, expected);
  if (rows != kAccounts || total != expected) {
    std::fprintf(stderr, "LEDGER AUDIT FAILED — money was created or destroyed!\n");
    return 1;
  }
  std::printf("OK: the ledger balanced across the failure — every committed transfer was\n"
              "atomic and durable, every aborted one left no trace.\n");
  bed.stop();
  return 0;
}
