// tfr_shell — an interactive / scriptable admin shell over a running
// testbed: transactional reads and writes, cluster introspection, fault
// injection, and recovery-threshold inspection from one prompt. Reads
// commands from stdin, so it doubles as a scripting tool:
//
//   $ printf 'put accounts alice balance 100\nget accounts alice balance\n' \
//       | ./examples/tfr_shell
//
// Commands:
//   put <table> <row> <col> <value>      commit a single-put transaction
//   get <table> <row> <col>              snapshot read
//   del <table> <row> <col>              commit a single-delete transaction
//   scan <table> [limit]                 snapshot scan
//   create <table> <regions> <rows>      create a pre-split table
//   status                               servers, regions, thresholds, log
//   crash-server <index>                 crash-fail a region server
//   crash-client                         crash the shell's own client
//   add-server                           elastic scale-out
//   split <region-name>                  split a region
//   rebalance                            even out region placement
//   wait-recovery                        block until failure handling done
//   help / quit
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/testbed/testbed.h"

using namespace tfr;

namespace {

void print_status(Testbed& bed) {
  std::printf("servers:\n");
  for (int i = 0; i < bed.cluster().num_servers(); ++i) {
    RegionServer& s = bed.cluster().server(i);
    std::printf("  %-6s %-5s regions=%zu wal_seq=%llu/%llu segments=%zu\n", s.id().c_str(),
                s.alive() ? "UP" : "DOWN", s.region_names().size(),
                static_cast<unsigned long long>(s.wal().synced_seq()),
                static_cast<unsigned long long>(s.wal().appended_seq()),
                s.wal().stats().live_segments);
  }
  std::printf("thresholds: TF=%lld TP=%lld\n",
              static_cast<long long>(bed.rm().global_tf()),
              static_cast<long long>(bed.rm().global_tp()));
  const auto log_stats = bed.tm().log().stats();
  std::printf("tm log: %lld live write-sets (%lld truncated at checkpoints)\n",
              static_cast<long long>(log_stats.live_records),
              static_cast<long long>(log_stats.truncated));
  const auto rm_stats = bed.rm().stats();
  std::printf("recoveries: clients=%lld servers=%lld regions=%lld\n",
              static_cast<long long>(rm_stats.client_recoveries),
              static_cast<long long>(rm_stats.server_recoveries),
              static_cast<long long>(rm_stats.regions_recovered));
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWARN);
  Testbed bed(fast_test_config(/*num_servers=*/2, /*num_clients=*/1));
  if (auto s = bed.start(); !s.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("tfr-kv shell — 2 region servers up. Type 'help' for commands.\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::printf("put get del scan create status crash-server crash-client add-server "
                  "split rebalance wait-recovery quit\n");
    } else if (cmd == "create") {
      std::string table;
      int regions = 2;
      std::uint64_t rows = 1000;
      in >> table >> regions >> rows;
      auto s = bed.create_table(table, rows, regions);
      std::printf("%s\n", s.to_string().c_str());
    } else if (cmd == "put" || cmd == "del") {
      std::string table, row, col, value;
      in >> table >> row >> col;
      if (cmd == "put") in >> value;
      Transaction txn = bed.client().begin(table);
      if (cmd == "put") {
        txn.put(row, col, value);
      } else {
        txn.del(row, col);
      }
      auto ts = txn.commit();
      if (ts.is_ok()) {
        bed.client().wait_flushed();
        bed.wait_stable(ts.value());
        std::printf("committed at ts %lld\n", static_cast<long long>(ts.value()));
      } else {
        std::printf("%s\n", ts.status().to_string().c_str());
      }
    } else if (cmd == "get") {
      std::string table, row, col;
      in >> table >> row >> col;
      Transaction txn = bed.client().begin(table);
      auto v = txn.get(row, col);
      txn.abort();
      if (!v.is_ok()) {
        std::printf("%s\n", v.status().to_string().c_str());
      } else if (!v.value()) {
        std::printf("(not found)\n");
      } else {
        std::printf("%s\n", v.value()->c_str());
      }
    } else if (cmd == "scan") {
      std::string table;
      std::size_t limit = 20;
      in >> table >> limit;
      Transaction txn = bed.client().begin(table);
      auto cells = txn.scan("", "", limit);
      txn.abort();
      if (!cells.is_ok()) {
        std::printf("%s\n", cells.status().to_string().c_str());
      } else {
        for (const auto& c : cells.value()) {
          std::printf("  %s/%s @%lld = %s\n", c.row.c_str(), c.column.c_str(),
                      static_cast<long long>(c.ts), c.value.c_str());
        }
        std::printf("(%zu cells)\n", cells.value().size());
      }
    } else if (cmd == "status") {
      print_status(bed);
    } else if (cmd == "crash-server") {
      int idx = 0;
      in >> idx;
      if (idx < 0 || idx >= bed.cluster().num_servers()) {
        std::printf("no such server\n");
      } else {
        bed.crash_server(idx);
        std::printf("crashed rs%d — detection and recovery run in the background; "
                    "use wait-recovery\n", idx + 1);
      }
    } else if (cmd == "crash-client") {
      bed.crash_client(0);
      std::printf("client crashed; the recovery manager will replay its commits\n");
    } else if (cmd == "add-server") {
      auto s = bed.cluster().add_server();
      std::printf("%s\n", s.is_ok() ? s.value()->id().c_str() : s.status().to_string().c_str());
    } else if (cmd == "split") {
      std::string region;
      in >> region;
      std::printf("%s\n", bed.master().split_region(region).to_string().c_str());
    } else if (cmd == "rebalance") {
      auto moved = bed.master().rebalance();
      if (moved.is_ok()) {
        std::printf("moved %d regions\n", moved.value());
      } else {
        std::printf("%s\n", moved.status().to_string().c_str());
      }
    } else if (cmd == "wait-recovery") {
      bed.wait_for_recovery();
      std::printf("recovery idle\n");
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  std::printf("bye\n");
  return 0;
}
