// Failure drill — a narrated tour of every failure mode the recovery
// middleware handles (§3), with INFO logging on so you can watch the
// protocol: heartbeats expiring, the master splitting WALs, regions being
// gated, the recovery manager replaying write-sets, thresholds advancing.
//
//   drill 1: region-server crash      (Algorithm 3/4: replay after TPr(s))
//   drill 2: client crash mid-flush   (Algorithm 1/2: replay after TFr(c))
//   drill 3: cascaded server crash    (TP inheritance via piggyback)
//   drill 4: recovery-manager restart (§3.3: state from the coordination svc)
//
//   $ ./examples/failure_drill
#include <cstdio>

#include "src/common/logging.h"
#include "src/testbed/testbed.h"

using namespace tfr;

namespace {

int g_row = 0;

/// Commit `n` single-row transactions and return their commit timestamps.
std::vector<Timestamp> commit_burst(Testbed& bed, TxnClient& client, int n) {
  std::vector<Timestamp> out;
  for (int i = 0; i < n; ++i) {
    Transaction txn = client.begin("drill");
    txn.put(Testbed::row_key(static_cast<std::uint64_t>(g_row)), "v",
            "payload-" + std::to_string(g_row));
    ++g_row;
    auto ts = txn.commit();
    if (ts.is_ok()) out.push_back(ts.value());
  }
  return out;
}

bool verify_all(Testbed& bed, TxnClient& reader, int upto) {
  Transaction txn = reader.begin("drill");
  for (int i = 0; i < upto; ++i) {
    auto v = txn.get(Testbed::row_key(static_cast<std::uint64_t>(i)), "v");
    if (!v.is_ok() || !v.value().has_value() ||
        *v.value() != "payload-" + std::to_string(i)) {
      std::fprintf(stderr, "!! row %d lost or wrong\n", i);
      txn.abort();
      return false;
    }
  }
  txn.abort();
  return true;
}

void banner(const char* text) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", text);
  std::printf("=============================================================\n");
}

}  // namespace

int main() {
  set_log_level(LogLevel::kINFO);

  TestbedConfig cfg = fast_test_config(/*num_servers=*/3, /*num_clients=*/2);
  // Slow the WAL syncer down so crashes genuinely lose the in-memory tail.
  cfg.cluster.server.wal_sync_interval = seconds(100);
  Testbed bed(cfg);
  if (!bed.start().is_ok() || !bed.create_table("drill", 100000, 6).is_ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  TxnClient& worker = bed.client(0);
  TxnClient& observer = bed.client(1);

  banner("drill 1: region-server crash — un-persisted updates must come back "
         "from the TM recovery log");
  auto ts1 = commit_burst(bed, worker, 40);
  worker.wait_flushed();
  std::printf(">>> crashing rs1 (its memstores and un-synced WAL die with it)\n");
  bed.crash_server(0);
  bed.wait_server_recoveries(1);
  bed.wait_for_recovery();
  worker.wait_flushed();
  bed.wait_stable(ts1.back());
  if (!verify_all(bed, observer, g_row)) return 1;
  std::printf("drill 1 OK — %zu transactions intact after server recovery\n", ts1.size());

  // Elastic scale-out (§2.1): bring a fresh server into the cluster so the
  // later drills still have spare capacity to fail over to.
  std::printf(">>> adding a replacement region server\n");
  if (!bed.cluster().add_server().is_ok()) {
    std::fprintf(stderr, "add_server failed\n");
    return 1;
  }

  banner("drill 2: client crash — committed but un-flushed write-sets are "
         "replayed from the log");
  auto ts2 = commit_burst(bed, worker, 40);  // do NOT wait for the flush
  std::printf(">>> crashing client-1 with %zu transactions possibly in flight\n",
              worker.flush_backlog());
  bed.crash_client(0);
  bed.wait_client_recoveries(1);
  bed.wait_for_recovery();
  bed.wait_stable(ts2.back());
  if (!verify_all(bed, observer, g_row)) return 1;
  std::printf("drill 2 OK — the recovery client re-flushed the dead client's commits\n");

  banner("drill 3: cascaded crash — the server that received the replay "
         "inherits TP(s) and its own failure replays again");
  auto ts3 = commit_burst(bed, observer, 40);
  observer.wait_flushed();
  std::printf(">>> crashing rs2; its regions (and the earlier replays) move on\n");
  bed.crash_server(1);
  bed.wait_server_recoveries(2);
  bed.wait_for_recovery();
  std::printf(">>> and immediately crashing rs3 before it can persist\n");
  bed.crash_server(2);
  bed.wait_server_recoveries(3);
  bed.wait_for_recovery();
  observer.wait_flushed();
  bed.wait_stable(ts3.back());
  if (!verify_all(bed, observer, g_row)) return 1;
  std::printf("drill 3 OK — durability held across back-to-back failures\n");

  banner("drill 4: recovery-manager restart — thresholds come back from the "
         "coordination service; processing never stopped");
  auto ts4 = commit_burst(bed, observer, 20);
  bed.restart_recovery_manager();
  auto ts5 = commit_burst(bed, observer, 20);
  observer.wait_flushed();
  bed.wait_stable(ts5.back());
  if (!verify_all(bed, observer, g_row)) return 1;
  std::printf("drill 4 OK — RM restarted, TF/TP recovered, %zu+%zu commits fine\n",
              ts4.size(), ts5.size());

  banner("all drills passed");
  std::printf("replay stats: client write-sets=%lld, region write-sets=%lld, "
              "mutations=%lld (skipped as out-of-region: %lld)\n",
              static_cast<long long>(bed.rm().recovery_client_stats().client_writesets_replayed),
              static_cast<long long>(bed.rm().recovery_client_stats().region_writesets_replayed),
              static_cast<long long>(bed.rm().recovery_client_stats().mutations_replayed),
              static_cast<long long>(bed.rm().recovery_client_stats().mutations_skipped));
  bed.stop();
  return 0;
}
