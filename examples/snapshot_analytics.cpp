// Snapshot analytics — demonstrates the stable-snapshot read mode (§3.2):
// while an OLTP writer keeps committing and a region server fails and
// recovers, a read-only "analytics" transaction scans the whole table on a
// consistent snapshot and always sees an internally consistent total, even
// though half the cluster is mid-recovery. This is the paper's "the client
// can at least continue to execute read-only transactions on older
// snapshots of the data" in action.
//
//   $ ./examples/snapshot_analytics
#include <atomic>
#include <cstdio>
#include <thread>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/testbed/testbed.h"

using namespace tfr;

namespace {

constexpr std::uint64_t kRows = 2000;
constexpr long long kUnitsPerRow = 50;

long long scan_total(Transaction& txn) {
  auto cells = txn.scan("", "", 0);
  if (!cells.is_ok()) return -1;
  long long total = 0;
  for (const auto& c : cells.value()) total += std::stoll(c.value);
  return total;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWARN);

  Testbed bed(fast_test_config(/*num_servers=*/3, /*num_clients=*/2));
  if (!bed.start().is_ok() || !bed.create_table("inventory", kRows, 6).is_ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // Seed: every row holds kUnitsPerRow units. Writers below only MOVE units
  // between rows, so every consistent snapshot sums to the same total.
  std::printf("seeding %llu rows x %lld units...\n",
              static_cast<unsigned long long>(kRows), kUnitsPerRow);
  for (std::uint64_t base = 0; base < kRows; base += 500) {
    Transaction txn = bed.client(0).begin("inventory");
    for (std::uint64_t i = base; i < std::min(kRows, base + 500); ++i) {
      txn.put(Testbed::row_key(i), "units", std::to_string(kUnitsPerRow));
    }
    if (!txn.commit().is_ok()) return 1;
  }
  bed.client(0).wait_flushed();
  bed.wait_stable(bed.tm().current_ts());
  const long long expected = static_cast<long long>(kRows) * kUnitsPerRow;

  // OLTP writer: keeps moving units between random rows.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(11);
    while (!stop) {
      const auto from = rng.next_below(kRows);
      auto to = rng.next_below(kRows);
      if (to == from) to = (to + 1) % kRows;
      Transaction txn = bed.client(0).begin("inventory");
      auto f = txn.get(Testbed::row_key(from), "units");
      auto t = txn.get(Testbed::row_key(to), "units");
      if (!f.is_ok() || !t.is_ok() || !f.value() || !t.value()) {
        txn.abort();
        continue;
      }
      const long long fv = std::stoll(*f.value());
      if (fv < 3) {
        txn.abort();
        continue;
      }
      txn.put(Testbed::row_key(from), "units", std::to_string(fv - 3));
      txn.put(Testbed::row_key(to), "units", std::to_string(std::stoll(*t.value()) + 3));
      (void)txn.commit();
    }
  });

  // Analytics reader: full-table scans on stable snapshots, including while
  // a server fails and recovers.
  int consistent = 0, scans = 0;
  auto run_scan = [&](const char* phase) {
    Transaction txn = bed.client(1).begin("inventory");
    const long long total = scan_total(txn);
    txn.abort();
    ++scans;
    const bool ok = total == expected;
    consistent += ok ? 1 : 0;
    std::printf("  scan #%d (%s, snapshot ts %lld): total=%lld %s\n", scans, phase,
                static_cast<long long>(txn.snapshot_ts()), total,
                ok ? "[consistent]" : "[INCONSISTENT!]");
  };

  std::printf("\nscanning during normal processing:\n");
  for (int i = 0; i < 3; ++i) run_scan("normal");

  std::printf("\ncrashing rs1; scanning during detection + recovery:\n");
  bed.crash_server(0);
  for (int i = 0; i < 3; ++i) run_scan("during failover");
  bed.wait_server_recoveries(1);
  bed.wait_for_recovery();

  std::printf("\nscanning after recovery:\n");
  for (int i = 0; i < 3; ++i) run_scan("after recovery");

  stop = true;
  writer.join();
  bed.client(0).wait_flushed();

  std::printf("\n%d/%d scans saw a consistent snapshot total of %lld\n", consistent, scans,
              expected);
  if (consistent != scans) {
    std::fprintf(stderr, "FAILED: some scan observed a torn state\n");
    return 1;
  }
  std::printf("OK: read-only analytics stayed consistent through the failure.\n");
  bed.stop();
  return 0;
}
